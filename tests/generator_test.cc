#include "stream/generator.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include <gtest/gtest.h>

#include "stream/flow_generator.h"
#include "stream/record.h"
#include "stream/uniform_generator.h"
#include "stream/zipf_generator.h"

namespace streamagg {
namespace {

Schema FourAttrs() { return *Schema::Default(4); }

uint64_t DistinctProjected(const std::vector<Record>& records,
                           AttributeSet set) {
  std::unordered_set<GroupKey, GroupKeyHash> seen;
  for (const Record& r : records) seen.insert(GroupKey::Project(r, set));
  return seen.size();
}

TEST(GroupUniverseTest, UniformHasExactSize) {
  auto u = GroupUniverse::Uniform(FourAttrs(), 500, {100, 100, 100, 100}, 1);
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->size(), 500u);
  std::vector<Record> tuples;
  for (size_t i = 0; i < u->size(); ++i) tuples.push_back(u->tuple(i));
  EXPECT_EQ(DistinctProjected(tuples, AttributeSet::Of({0, 1, 2, 3})), 500u);
}

TEST(GroupUniverseTest, UniformRespectsCardinalities) {
  auto u = GroupUniverse::Uniform(FourAttrs(), 500, {7, 100, 100, 100}, 2);
  ASSERT_TRUE(u.ok());
  std::vector<Record> tuples;
  for (size_t i = 0; i < u->size(); ++i) tuples.push_back(u->tuple(i));
  EXPECT_LE(DistinctProjected(tuples, AttributeSet::Single(0)), 7u);
}

TEST(GroupUniverseTest, UniformRejectsTinyDomains) {
  EXPECT_FALSE(GroupUniverse::Uniform(FourAttrs(), 500, {2, 2, 2, 2}, 1).ok());
  EXPECT_FALSE(GroupUniverse::Uniform(FourAttrs(), 500, {0, 9, 9, 9}, 1).ok());
  EXPECT_FALSE(GroupUniverse::Uniform(FourAttrs(), 500, {100, 100}, 1).ok());
}

TEST(GroupUniverseTest, HierarchicalMatchesPrefixCounts) {
  // The paper's projection counts (Section 6.1).
  auto u =
      GroupUniverse::Hierarchical(FourAttrs(), {552, 1846, 2117, 2837}, 3);
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->size(), 2837u);
  std::vector<Record> tuples;
  for (size_t i = 0; i < u->size(); ++i) tuples.push_back(u->tuple(i));
  EXPECT_EQ(DistinctProjected(tuples, AttributeSet::Of({0})), 552u);
  EXPECT_EQ(DistinctProjected(tuples, AttributeSet::Of({0, 1})), 1846u);
  EXPECT_EQ(DistinctProjected(tuples, AttributeSet::Of({0, 1, 2})), 2117u);
  EXPECT_EQ(DistinctProjected(tuples, AttributeSet::Of({0, 1, 2, 3})), 2837u);
}

TEST(GroupUniverseTest, HierarchicalValidatesLevelSizes) {
  EXPECT_FALSE(
      GroupUniverse::Hierarchical(FourAttrs(), {100, 50, 200, 300}, 1).ok());
  EXPECT_FALSE(GroupUniverse::Hierarchical(FourAttrs(), {0, 1, 2, 3}, 1).ok());
  EXPECT_FALSE(GroupUniverse::Hierarchical(FourAttrs(), {1, 2}, 1).ok());
}

TEST(UniformGeneratorTest, DeterministicAndResettable) {
  auto gen = UniformGenerator::Make(FourAttrs(), 100, 11);
  ASSERT_TRUE(gen.ok());
  std::vector<Record> first;
  for (int i = 0; i < 50; ++i) first.push_back((*gen)->Next());
  (*gen)->Reset();
  for (int i = 0; i < 50; ++i) {
    const Record r = (*gen)->Next();
    EXPECT_EQ(r.values, first[i].values) << "position " << i;
  }
}

TEST(UniformGeneratorTest, CoversUniverseRoughlyEvenly) {
  auto gen = UniformGenerator::Make(FourAttrs(), 50, 12);
  ASSERT_TRUE(gen.ok());
  std::unordered_set<GroupKey, GroupKeyHash> seen;
  const AttributeSet all = AttributeSet::Of({0, 1, 2, 3});
  for (int i = 0; i < 5000; ++i) {
    seen.insert(GroupKey::Project((*gen)->Next(), all));
  }
  EXPECT_EQ(seen.size(), 50u);  // With 100x oversampling all groups appear.
}

TEST(UniformGeneratorTest, NoFlowStructure) {
  auto gen = UniformGenerator::Make(FourAttrs(), 50, 13);
  ASSERT_TRUE(gen.ok());
  (*gen)->Next();
  EXPECT_EQ((*gen)->last_flow_id(), 0u);
}

TEST(ZipfGeneratorTest, ZeroThetaIsRoughlyUniform) {
  auto universe = GroupUniverse::Uniform(FourAttrs(), 10, {50, 50, 50, 50}, 4);
  ASSERT_TRUE(universe.ok());
  auto gen = ZipfGenerator::Make(std::move(*universe), 0.0, 5);
  ASSERT_TRUE(gen.ok());
  std::unordered_map<GroupKey, int, GroupKeyHash> counts;
  const AttributeSet all = AttributeSet::Of({0, 1, 2, 3});
  for (int i = 0; i < 20000; ++i) {
    counts[GroupKey::Project((*gen)->Next(), all)] += 1;
  }
  ASSERT_EQ(counts.size(), 10u);
  for (const auto& [key, count] : counts) {
    EXPECT_NEAR(count, 2000, 2000 * 0.25);
  }
}

TEST(ZipfGeneratorTest, SkewConcentratesMass) {
  auto universe =
      GroupUniverse::Uniform(FourAttrs(), 100, {500, 500, 500, 500}, 6);
  ASSERT_TRUE(universe.ok());
  auto gen = ZipfGenerator::Make(std::move(*universe), 1.2, 7);
  ASSERT_TRUE(gen.ok());
  std::unordered_map<GroupKey, int, GroupKeyHash> counts;
  const AttributeSet all = AttributeSet::Of({0, 1, 2, 3});
  const int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    counts[GroupKey::Project((*gen)->Next(), all)] += 1;
  }
  int max_count = 0;
  for (const auto& [key, count] : counts) max_count = std::max(max_count, count);
  // Under Zipf(1.2) over 100 groups the top group receives ~19% of mass;
  // uniform would give 1%.
  EXPECT_GT(max_count, kDraws / 20);
}

TEST(ZipfGeneratorTest, RejectsBadArguments) {
  auto universe = GroupUniverse::Uniform(FourAttrs(), 10, {50, 50, 50, 50}, 4);
  ASSERT_TRUE(universe.ok());
  EXPECT_FALSE(ZipfGenerator::Make(std::move(*universe), -0.5, 1).ok());
}

TEST(FlowGeneratorTest, PacketsOfAFlowShareAllAttributes) {
  auto gen = FlowGenerator::MakePaperTrace({});
  ASSERT_TRUE(gen.ok());
  std::unordered_map<uint32_t, GroupKey> flow_to_key;
  const AttributeSet all = AttributeSet::Of({0, 1, 2, 3});
  for (int i = 0; i < 20000; ++i) {
    const Record r = (*gen)->Next();
    const uint32_t flow = (*gen)->last_flow_id();
    ASSERT_NE(flow, 0u);
    const GroupKey key = GroupKey::Project(r, all);
    auto [it, inserted] = flow_to_key.emplace(flow, key);
    if (!inserted) {
      EXPECT_TRUE(it->second == key) << "flow " << flow << " changed group";
    }
  }
}

TEST(FlowGeneratorTest, MeanFlowLengthIsRespected) {
  FlowGeneratorOptions options;
  options.mean_flow_length = 20.0;
  options.seed = 9;
  auto gen = FlowGenerator::MakePaperTrace(options);
  ASSERT_TRUE(gen.ok());
  std::unordered_set<uint32_t> flows;
  const int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) {
    (*gen)->Next();
    flows.insert((*gen)->last_flow_id());
  }
  const double observed_mean = static_cast<double>(kDraws) / flows.size();
  EXPECT_NEAR(observed_mean, 20.0, 2.0);
}

TEST(FlowGeneratorTest, ResetReproducesStream) {
  auto gen = FlowGenerator::MakePaperTrace({});
  ASSERT_TRUE(gen.ok());
  std::vector<Record> first;
  for (int i = 0; i < 100; ++i) first.push_back((*gen)->Next());
  (*gen)->Reset();
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ((*gen)->Next().values, first[i].values);
  }
}

}  // namespace
}  // namespace streamagg
