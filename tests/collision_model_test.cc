#include "core/collision_model.h"

#include <cmath>

#include <gtest/gtest.h>

namespace streamagg {
namespace {

TEST(RoughModelTest, MatchesEquation10) {
  RoughCollisionModel model;
  EXPECT_DOUBLE_EQ(model.Rate(2000, 1000), 0.5);
  EXPECT_DOUBLE_EQ(model.Rate(4000, 1000), 0.75);
  // Clamped at 0 when buckets outnumber groups.
  EXPECT_DOUBLE_EQ(model.Rate(500, 1000), 0.0);
  EXPECT_DOUBLE_EQ(model.Rate(1, 1000), 0.0);
}

TEST(PreciseModelTest, ClosedFormEqualsTruncatedSum) {
  // The paper computes Equation 13 as a truncated binomial sum (Section
  // 4.4); our closed form must agree everywhere.
  PreciseCollisionModel closed;
  TruncatedSumCollisionModel sum(5.0);
  for (double b : {100.0, 300.0, 1000.0, 3000.0}) {
    for (double ratio : {0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0}) {
      const double g = ratio * b;
      if (g < 2) continue;
      const double xc = closed.Rate(g, b);
      const double xs = sum.Rate(g, b);
      EXPECT_NEAR(xc, xs, 0.01 * std::max(xc, 1e-3))
          << "g=" << g << " b=" << b;
    }
  }
}

TEST(PreciseModelTest, RoughModelConvergesAtLargeRatio) {
  // Paper Section 4.2: the rough model differs greatly at small g/b but
  // approaches the precise model as g/b grows.
  PreciseCollisionModel precise;
  RoughCollisionModel rough;
  const double small_gap =
      std::fabs(precise.Rate(500, 1000) - rough.Rate(500, 1000));
  const double large_gap =
      std::fabs(precise.Rate(20000, 1000) - rough.Rate(20000, 1000));
  EXPECT_GT(small_gap, 0.2);   // Rough says 0; precise is ~0.21.
  EXPECT_LT(large_gap, 0.01);  // Both ~0.95 at g/b = 20.
}

TEST(PreciseModelTest, RateIsWithinUnitInterval) {
  PreciseCollisionModel model;
  for (double g : {2.0, 10.0, 1e3, 1e6}) {
    for (double b : {1.0, 10.0, 1e3, 1e6}) {
      const double x = model.Rate(g, b);
      EXPECT_GE(x, 0.0);
      EXPECT_LE(x, 1.0);
    }
  }
}

TEST(TruncatedSumTest, SingleBucketDegenerates) {
  TruncatedSumCollisionModel model;
  // All g groups share one bucket: every record collides except when the
  // previous record had the same group: x = (g-1)/g.
  EXPECT_NEAR(model.Rate(10, 1), 0.9, 1e-9);
}

TEST(CollisionComponentTest, Figure6BellShape) {
  // g = 3000, b = 1000 (paper Figure 6): contributions peak near k = 4 and
  // vanish beyond k ~ 12.
  const double g = 3000, b = 1000;
  double peak_value = 0.0;
  uint64_t peak_k = 0;
  for (uint64_t k = 2; k <= 20; ++k) {
    const double v = CollisionProbabilityComponent(g, b, k);
    if (v > peak_value) {
      peak_value = v;
      peak_k = k;
    }
  }
  EXPECT_EQ(peak_k, 4u);
  EXPECT_GT(peak_value, 0.1);
  EXPECT_LT(CollisionProbabilityComponent(g, b, 12), 0.005);
  EXPECT_EQ(CollisionProbabilityComponent(g, b, 0), 0.0);
  EXPECT_EQ(CollisionProbabilityComponent(g, b, 1), 0.0);
}

TEST(CollisionComponentTest, ComponentsSumToPreciseRate) {
  const double g = 3000, b = 1000;
  double sum = 0.0;
  for (uint64_t k = 2; k <= 40; ++k) {
    sum += CollisionProbabilityComponent(g, b, k);
  }
  PreciseCollisionModel model;
  EXPECT_NEAR(sum, model.Rate(g, b), 1e-6);
}

TEST(PrecomputedModelTest, TracksPreciseModelWithinFivePercent) {
  // The paper's regression targets a 5% maximum relative error per interval
  // (Section 4.4).
  PrecomputedCollisionModel precomputed;
  PreciseCollisionModel precise;
  EXPECT_LT(precomputed.max_fit_error(), 0.05);
  for (double r = 0.05; r <= 49.0; r += 0.37) {
    const double b = 1500.0;
    const double x_pre = precomputed.Rate(r * b, b);
    const double x_exact = precise.Rate(r * b, b);
    EXPECT_NEAR(x_pre, x_exact, 0.05 * std::max(x_exact, 0.02)) << "r=" << r;
  }
}

TEST(PrecomputedModelTest, SaturatesBeyondTrainedRange) {
  PrecomputedCollisionModel model;
  EXPECT_GT(model.Rate(100 * 1000.0, 1000.0), 0.98);
}

TEST(LinearModelTest, MatchesEquation16) {
  LinearCollisionModel model;  // Defaults alpha = 0.0267, mu = 0.354.
  EXPECT_NEAR(model.Rate(1000, 1000), 0.0267 + 0.354, 1e-12);
  EXPECT_NEAR(model.Rate(500, 1000), 0.0267 + 0.177, 1e-12);
}

TEST(LinearModelTest, LinearFitApproximatesLowRegion) {
  // Figure 8: in the low-collision region (x <= 0.4) the linear fit tracks
  // the precise curve within ~10%.
  PreciseCollisionModel precise;
  LinearCollisionModel linear;
  for (double r = 0.2; r <= 1.0; r += 0.1) {
    const double b = 2000.0;
    const double exact = precise.Rate(r * b, b);
    const double approx = linear.Rate(r * b, b);
    EXPECT_NEAR(approx, exact, 0.10 * exact + 0.01) << "r=" << r;
  }
}

TEST(ClusteredRateTest, DividesByFlowLength) {
  // Equation 15: clustered collision rate is the random rate over l_a.
  PreciseCollisionModel model;
  const double base = model.Rate(3000, 1000);
  EXPECT_DOUBLE_EQ(model.ClusteredRate(3000, 1000, 1.0), base);
  EXPECT_DOUBLE_EQ(model.ClusteredRate(3000, 1000, 10.0), base / 10.0);
  // Flow lengths below 1 are treated as 1.
  EXPECT_DOUBLE_EQ(model.ClusteredRate(3000, 1000, 0.5), base);
}

TEST(FactoryTest, ProducesEveryKind) {
  for (CollisionModelKind kind :
       {CollisionModelKind::kRough, CollisionModelKind::kPrecise,
        CollisionModelKind::kTruncatedSum, CollisionModelKind::kPrecomputed,
        CollisionModelKind::kLinear}) {
    auto model = MakeCollisionModel(kind);
    ASSERT_NE(model, nullptr);
    const double x = model->Rate(2000, 1000);
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, 1.0);
  }
}

class RatioOnlyTest : public ::testing::TestWithParam<double> {};

TEST_P(RatioOnlyTest, PreciseRateDependsOnRatioOnly) {
  // Paper Table 1: variation across b at fixed g/b is under 1.5%.
  const double ratio = GetParam();
  PreciseCollisionModel model;
  const double reference = model.Rate(ratio * 3000, 3000);
  for (double b = 300; b <= 3000; b += 300) {
    const double x = model.Rate(ratio * b, b);
    if (reference > 1e-6) {
      EXPECT_NEAR(x, reference, 0.015 * reference) << "b=" << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(PaperTable1Ratios, RatioOnlyTest,
                         ::testing::Values(0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0,
                                           32.0));

}  // namespace
}  // namespace streamagg
