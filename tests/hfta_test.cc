#include "dsms/hfta.h"

#include <gtest/gtest.h>

namespace streamagg {
namespace {

GroupKey Key1(uint32_t v) {
  GroupKey k;
  k.size = 1;
  k.values[0] = v;
  return k;
}

TEST(HftaTest, CombinesPartialCountsForSameGroup) {
  Hfta hfta(1);
  // Multiple tuples for the same group in the same epoch arrive because of
  // evictions; the HFTA combines them (paper Section 2.2).
  hfta.Add(0, 3, Key1(7), AggregateState::FromCount(2));
  hfta.Add(0, 3, Key1(7), AggregateState::FromCount(5));
  hfta.Add(0, 3, Key1(8), AggregateState::FromCount(1));
  const EpochAggregate& result = hfta.Result(0, 3);
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result.at(Key1(7)).count, 7u);
  EXPECT_EQ(result.at(Key1(8)).count, 1u);
  EXPECT_EQ(hfta.TotalCount(0, 3), 8u);
}

TEST(HftaTest, SeparatesEpochs) {
  Hfta hfta(1);
  hfta.Add(0, 0, Key1(1), AggregateState::FromCount(1));
  hfta.Add(0, 1, Key1(1), AggregateState::FromCount(4));
  EXPECT_EQ(hfta.Result(0, 0).at(Key1(1)).count, 1u);
  EXPECT_EQ(hfta.Result(0, 1).at(Key1(1)).count, 4u);
  const std::vector<uint64_t> epochs = hfta.Epochs(0);
  ASSERT_EQ(epochs.size(), 2u);
  EXPECT_EQ(epochs[0], 0u);
  EXPECT_EQ(epochs[1], 1u);
}

TEST(HftaTest, SeparatesQueries) {
  Hfta hfta(2);
  hfta.Add(0, 0, Key1(1), AggregateState::FromCount(1));
  hfta.Add(1, 0, Key1(1), AggregateState::FromCount(9));
  EXPECT_EQ(hfta.Result(0, 0).at(Key1(1)).count, 1u);
  EXPECT_EQ(hfta.Result(1, 0).at(Key1(1)).count, 9u);
}

TEST(HftaTest, CountsTransfers) {
  Hfta hfta(1);
  EXPECT_EQ(hfta.transfers(), 0u);
  hfta.Add(0, 0, Key1(1), AggregateState::FromCount(1));
  hfta.Add(0, 0, Key1(1), AggregateState::FromCount(1));
  hfta.Add(0, 1, Key1(2), AggregateState::FromCount(1));
  EXPECT_EQ(hfta.transfers(), 3u);
}

TEST(HftaTest, MissingEpochIsEmpty) {
  Hfta hfta(1);
  EXPECT_TRUE(hfta.Result(0, 42).empty());
  EXPECT_EQ(hfta.TotalCount(0, 42), 0u);
}

TEST(HftaTest, MergesMetricStates) {
  // One query with sum(attr 2) and min(attr 2): partial states merge per
  // op — sums add, mins fold.
  const std::vector<MetricSpec> metrics = {
      MetricSpec{AggregateOp::kSum, 2}, MetricSpec{AggregateOp::kMin, 2}};
  Hfta hfta(std::vector<std::vector<MetricSpec>>{metrics});
  AggregateState a = AggregateState::FromCount(3);
  a.num_metrics = 2;
  a.metrics[0] = 100;  // partial sum
  a.metrics[1] = 40;   // partial min
  AggregateState b = AggregateState::FromCount(2);
  b.num_metrics = 2;
  b.metrics[0] = 50;
  b.metrics[1] = 7;
  hfta.Add(0, 0, Key1(5), a);
  hfta.Add(0, 0, Key1(5), b);
  const AggregateState& merged = hfta.Result(0, 0).at(Key1(5));
  EXPECT_EQ(merged.count, 5u);
  EXPECT_EQ(merged.metrics[0], 150u);  // sum
  EXPECT_EQ(merged.metrics[1], 7u);    // min
  EXPECT_EQ(hfta.query_metrics(0).size(), 2u);
}

}  // namespace
}  // namespace streamagg
