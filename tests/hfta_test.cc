#include "dsms/hfta.h"

#include <gtest/gtest.h>

namespace streamagg {
namespace {

GroupKey Key1(uint32_t v) {
  GroupKey k;
  k.size = 1;
  k.values[0] = v;
  return k;
}

TEST(HftaTest, CombinesPartialCountsForSameGroup) {
  Hfta hfta(1);
  // Multiple tuples for the same group in the same epoch arrive because of
  // evictions; the HFTA combines them (paper Section 2.2).
  hfta.Add(0, 3, Key1(7), AggregateState::FromCount(2));
  hfta.Add(0, 3, Key1(7), AggregateState::FromCount(5));
  hfta.Add(0, 3, Key1(8), AggregateState::FromCount(1));
  const EpochAggregate& result = hfta.Result(0, 3);
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result.at(Key1(7)).count, 7u);
  EXPECT_EQ(result.at(Key1(8)).count, 1u);
  EXPECT_EQ(hfta.TotalCount(0, 3), 8u);
}

TEST(HftaTest, SeparatesEpochs) {
  Hfta hfta(1);
  hfta.Add(0, 0, Key1(1), AggregateState::FromCount(1));
  hfta.Add(0, 1, Key1(1), AggregateState::FromCount(4));
  EXPECT_EQ(hfta.Result(0, 0).at(Key1(1)).count, 1u);
  EXPECT_EQ(hfta.Result(0, 1).at(Key1(1)).count, 4u);
  const std::vector<uint64_t> epochs = hfta.Epochs(0);
  ASSERT_EQ(epochs.size(), 2u);
  EXPECT_EQ(epochs[0], 0u);
  EXPECT_EQ(epochs[1], 1u);
}

TEST(HftaTest, SeparatesQueries) {
  Hfta hfta(2);
  hfta.Add(0, 0, Key1(1), AggregateState::FromCount(1));
  hfta.Add(1, 0, Key1(1), AggregateState::FromCount(9));
  EXPECT_EQ(hfta.Result(0, 0).at(Key1(1)).count, 1u);
  EXPECT_EQ(hfta.Result(1, 0).at(Key1(1)).count, 9u);
}

TEST(HftaTest, CountsTransfers) {
  Hfta hfta(1);
  EXPECT_EQ(hfta.transfers(), 0u);
  hfta.Add(0, 0, Key1(1), AggregateState::FromCount(1));
  hfta.Add(0, 0, Key1(1), AggregateState::FromCount(1));
  hfta.Add(0, 1, Key1(2), AggregateState::FromCount(1));
  EXPECT_EQ(hfta.transfers(), 3u);
}

TEST(HftaTest, MissingEpochIsEmpty) {
  Hfta hfta(1);
  EXPECT_TRUE(hfta.Result(0, 42).empty());
  EXPECT_EQ(hfta.TotalCount(0, 42), 0u);
}

TEST(HftaTest, MergesMetricStates) {
  // One query with sum(attr 2) and min(attr 2): partial states merge per
  // op — sums add, mins fold.
  const std::vector<MetricSpec> metrics = {
      MetricSpec{AggregateOp::kSum, 2}, MetricSpec{AggregateOp::kMin, 2}};
  Hfta hfta(std::vector<std::vector<MetricSpec>>{metrics});
  AggregateState a = AggregateState::FromCount(3);
  a.num_metrics = 2;
  a.metrics[0] = 100;  // partial sum
  a.metrics[1] = 40;   // partial min
  AggregateState b = AggregateState::FromCount(2);
  b.num_metrics = 2;
  b.metrics[0] = 50;
  b.metrics[1] = 7;
  hfta.Add(0, 0, Key1(5), a);
  hfta.Add(0, 0, Key1(5), b);
  const AggregateState& merged = hfta.Result(0, 0).at(Key1(5));
  EXPECT_EQ(merged.count, 5u);
  EXPECT_EQ(merged.metrics[0], 150u);  // sum
  EXPECT_EQ(merged.metrics[1], 7u);    // min
  EXPECT_EQ(hfta.query_metrics(0).size(), 2u);
}

TEST(HftaTest, RemapDropsSlotAndCarriesSurvivors) {
  // Two queries; drop slot 0, keep slot 1 (renumbered to 0), append a
  // fresh empty slot with its own metric list.
  Hfta hfta(2);
  hfta.Add(0, 3, Key1(1), AggregateState::FromCount(5));
  hfta.Add(1, 3, Key1(2), AggregateState::FromCount(7));

  const std::vector<MetricSpec> fresh = {MetricSpec{AggregateOp::kMax, 1}};
  hfta.Remap({{}, fresh}, {1, -1});

  ASSERT_EQ(hfta.num_queries(), 2);
  EXPECT_EQ(hfta.Result(0, 3).at(Key1(2)).count, 7u);  // Old slot 1.
  EXPECT_TRUE(hfta.Result(1, 3).empty());              // Fresh slot.
  EXPECT_EQ(hfta.query_metrics(1), fresh);
}

TEST(HftaTest, RemapInvalidatesAddTargetCache) {
  // The ISSUE 10 satellite regression: Add caches its (query, epoch)
  // target aggregate between calls, and Remap reshapes the storage that
  // cache points into. Without explicit invalidation the next Add for the
  // same (query, epoch) would write through the stale pointer — a dropped
  // query's groups would keep accumulating into freed storage (asan sees
  // heap-use-after-free; unsanitized builds silently corrupt results).
  Hfta hfta(2);
  hfta.Add(0, 5, Key1(1), AggregateState::FromCount(1));  // Prime the cache.
  hfta.Add(1, 5, Key1(9), AggregateState::FromCount(4));

  hfta.Remap({{}}, {1});  // Drop slot 0; old slot 1 becomes slot 0.

  // Same (query_index, epoch) as the primed cache — must target the NEW
  // slot 0 (old slot 1), not the dropped slot's freed aggregate.
  hfta.Add(0, 5, Key1(9), AggregateState::FromCount(2));
  ASSERT_EQ(hfta.num_queries(), 1);
  EXPECT_EQ(hfta.Result(0, 5).at(Key1(9)).count, 6u);
  EXPECT_EQ(hfta.Result(0, 5).count(Key1(1)), 0u);  // Dropped for good.
}

TEST(HftaTest, RemapIdentityPlusFreshSlotKeepsResults) {
  // The AddQuery shape: identity for existing slots, -1 for the newcomer.
  Hfta hfta(1);
  hfta.Add(0, 2, Key1(3), AggregateState::FromCount(11));
  hfta.Remap({{}, {}}, {0, -1});
  ASSERT_EQ(hfta.num_queries(), 2);
  EXPECT_EQ(hfta.Result(0, 2).at(Key1(3)).count, 11u);
  EXPECT_TRUE(hfta.Epochs(1).empty());
  // The fresh slot accumulates independently from here on.
  hfta.Add(1, 2, Key1(3), AggregateState::FromCount(1));
  EXPECT_EQ(hfta.Result(0, 2).at(Key1(3)).count, 11u);
  EXPECT_EQ(hfta.Result(1, 2).at(Key1(3)).count, 1u);
}

}  // namespace
}  // namespace streamagg
