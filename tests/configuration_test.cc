#include "core/configuration.h"

#include <gtest/gtest.h>

namespace streamagg {
namespace {

Schema FourAttrs() { return *Schema::Default(4); }

AttributeSet Set(const Schema& schema, const std::string& spec) {
  return *schema.ParseAttributeSet(spec);
}

TEST(ConfigurationTest, NoPhantomsIsAForest) {
  const Schema schema = FourAttrs();
  auto config = Configuration::Make(
      schema, {Set(schema, "A"), Set(schema, "B"), Set(schema, "C")}, {});
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->num_nodes(), 3);
  EXPECT_EQ(config->num_queries(), 3);
  EXPECT_EQ(config->num_phantoms(), 0);
  EXPECT_EQ(config->RawRelations().size(), 3u);
  EXPECT_EQ(config->Leaves().size(), 3u);
  EXPECT_EQ(config->ToString(), "A B C");
}

TEST(ConfigurationTest, PhantomBecomesParent) {
  const Schema schema = FourAttrs();
  auto config = Configuration::Make(
      schema, {Set(schema, "A"), Set(schema, "B"), Set(schema, "C")},
      {Set(schema, "ABC")});
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->ToString(), "ABC(A B C)");
  const auto raw = config->RawRelations();
  ASSERT_EQ(raw.size(), 1u);
  EXPECT_EQ(config->node(raw[0]).attrs, Set(schema, "ABC"));
  EXPECT_FALSE(config->node(raw[0]).is_query);
}

TEST(ConfigurationTest, MinimalSupersetIsChosenAsParent) {
  const Schema schema = FourAttrs();
  // With ABC and ABCD instantiated, AB hangs off ABC (the smaller superset).
  auto config = Configuration::Make(
      schema, {Set(schema, "AB"), Set(schema, "CD")},
      {Set(schema, "ABC"), Set(schema, "ABCD")});
  ASSERT_TRUE(config.ok());
  const int ab = config->FindNode(Set(schema, "AB"));
  const int abc = config->FindNode(Set(schema, "ABC"));
  const int abcd = config->FindNode(Set(schema, "ABCD"));
  const int cd = config->FindNode(Set(schema, "CD"));
  EXPECT_EQ(config->node(ab).parent, abc);
  EXPECT_EQ(config->node(abc).parent, abcd);
  EXPECT_EQ(config->node(cd).parent, abcd);
  EXPECT_EQ(config->node(abcd).parent, -1);
}

TEST(ConfigurationTest, TieBreakIsDeterministic) {
  const Schema schema = FourAttrs();
  // B is a subset of both ABC and BCD (incomparable, same size): the
  // tie-break picks the smaller mask (ABC = 0b0111 < BCD = 0b1110).
  auto config = Configuration::Make(schema, {Set(schema, "B")},
                                    {Set(schema, "ABC"), Set(schema, "BCD")});
  ASSERT_TRUE(config.ok());
  const int b = config->FindNode(Set(schema, "B"));
  EXPECT_EQ(config->node(b).parent, config->FindNode(Set(schema, "ABC")));

  // A query contained in another query is fed by it when that is the
  // minimal superset: B under AB rather than under ABC.
  auto nested = Configuration::Make(
      schema, {Set(schema, "AB"), Set(schema, "B")}, {Set(schema, "ABC")});
  ASSERT_TRUE(nested.ok());
  const int b2 = nested->FindNode(Set(schema, "B"));
  EXPECT_EQ(nested->node(b2).parent, nested->FindNode(Set(schema, "AB")));
}

TEST(ConfigurationTest, NodesAreParentsBeforeChildren) {
  const Schema schema = FourAttrs();
  auto config = Configuration::Make(
      schema,
      {Set(schema, "AB"), Set(schema, "BC"), Set(schema, "BD"),
       Set(schema, "CD")},
      {Set(schema, "BCD"), Set(schema, "ABCD")});
  ASSERT_TRUE(config.ok());
  for (int i = 0; i < config->num_nodes(); ++i) {
    EXPECT_LT(config->node(i).parent, i);
  }
  EXPECT_EQ(config->ToString(), "ABCD(AB BCD(BC BD CD))");
}

TEST(ConfigurationTest, RejectsDuplicatesAndPhantomEqualToQuery) {
  const Schema schema = FourAttrs();
  EXPECT_FALSE(Configuration::Make(
                   schema, {Set(schema, "A"), Set(schema, "A")}, {})
                   .ok());
  EXPECT_FALSE(Configuration::Make(schema, {Set(schema, "A")},
                                   {Set(schema, "A")})
                   .ok());
  EXPECT_FALSE(
      Configuration::Make(schema, std::vector<AttributeSet>{}, {}).ok());
}

TEST(ConfigurationTest, MakeFlatIgnoresContainment) {
  const Schema schema = FourAttrs();
  // ABC contains AB contains A, yet the flat (naive Section 2.4) evaluation
  // keeps all three as independent raw tables.
  auto flat = Configuration::MakeFlat(
      schema, {Set(schema, "ABC"), Set(schema, "AB"), Set(schema, "A")});
  ASSERT_TRUE(flat.ok());
  EXPECT_EQ(flat->RawRelations().size(), 3u);
  for (int i = 0; i < flat->num_nodes(); ++i) {
    EXPECT_EQ(flat->node(i).parent, -1);
    EXPECT_TRUE(flat->node(i).is_query);
  }
  // The cascading builder would chain them instead.
  auto chained = Configuration::Make(
      schema, {Set(schema, "ABC"), Set(schema, "AB"), Set(schema, "A")}, {});
  ASSERT_TRUE(chained.ok());
  EXPECT_EQ(chained->RawRelations().size(), 1u);
  EXPECT_FALSE(
      Configuration::MakeFlat(schema, std::vector<AttributeSet>{}).ok());
  EXPECT_FALSE(
      Configuration::MakeFlat(schema, {Set(schema, "A"), Set(schema, "A")})
          .ok());
}

TEST(ConfigurationTest, ParseSimple) {
  const Schema schema = FourAttrs();
  auto config = Configuration::Parse(schema, "AB(A B) CD(C D)");
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->num_nodes(), 6);
  EXPECT_EQ(config->num_queries(), 4);
  EXPECT_EQ(config->num_phantoms(), 2);
  EXPECT_EQ(config->ToString(), "AB(A B) CD(C D)");
}

TEST(ConfigurationTest, ParseAcceptsOuterParens) {
  const Schema schema = FourAttrs();
  // The paper writes configurations as "(ABCD(AB BCD(BC BD CD)))".
  auto config = Configuration::Parse(schema, "(ABCD(AB BCD(BC BD CD)))");
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->ToString(), "ABCD(AB BCD(BC BD CD))");
  EXPECT_EQ(config->num_queries(), 4);
}

TEST(ConfigurationTest, ParsePaperFigure9a) {
  const Schema schema = FourAttrs();
  auto config = Configuration::Parse(schema, "(ABC(AC(A C) B))");
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->num_nodes(), 5);
  EXPECT_EQ(config->num_phantoms(), 2);  // ABC and AC.
  const int ac = config->FindNode(Set(schema, "AC"));
  ASSERT_GE(ac, 0);
  EXPECT_FALSE(config->node(ac).is_query);
  EXPECT_EQ(config->node(ac).children.size(), 2u);
}

TEST(ConfigurationTest, ParseRoundTripsThroughToString) {
  const Schema schema = FourAttrs();
  for (const char* text :
       {"A B C D", "ABC(A B C)", "ABCD(AB BCD(BC BD CD))",
        "AB(A B) CD(C D)", "ABCD(ABC(A BC(B C)) D)"}) {
    auto config = Configuration::Parse(schema, text);
    ASSERT_TRUE(config.ok()) << text;
    EXPECT_EQ(config->ToString(), text);
    auto again = Configuration::Parse(schema, config->ToString());
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(again->ToString(), config->ToString());
  }
}

TEST(ConfigurationTest, ParseWithExplicitQueries) {
  const Schema schema = FourAttrs();
  const std::vector<AttributeSet> queries = {Set(schema, "AB"),
                                             Set(schema, "A")};
  // AB is an internal query feeding query A.
  auto config = Configuration::Parse(schema, "AB(A)", queries);
  ASSERT_TRUE(config.ok());
  const int ab = config->FindNode(Set(schema, "AB"));
  EXPECT_TRUE(config->node(ab).is_query);
  EXPECT_EQ(config->node(ab).query_index, 0);
  EXPECT_EQ(config->node(ab).children.size(), 1u);
}

TEST(ConfigurationTest, ParseWithExplicitQueriesRejectsMissingQuery) {
  const Schema schema = FourAttrs();
  EXPECT_FALSE(Configuration::Parse(schema, "AB(A B)",
                                    {Set(schema, "A"), Set(schema, "C")})
                   .ok());
}

TEST(ConfigurationTest, ParseRejectsNonQueryLeaf) {
  const Schema schema = FourAttrs();
  // Leaf B is not in the query list.
  EXPECT_FALSE(
      Configuration::Parse(schema, "AB(A B)", {Set(schema, "A"),
                                               Set(schema, "AB")})
          .ok());
}

TEST(ConfigurationTest, ParseRejectsMalformedText) {
  const Schema schema = FourAttrs();
  EXPECT_FALSE(Configuration::Parse(schema, "").ok());
  EXPECT_FALSE(Configuration::Parse(schema, "AB(A B").ok());
  EXPECT_FALSE(Configuration::Parse(schema, "AB)A B(").ok());
  EXPECT_FALSE(Configuration::Parse(schema, "AB(A XY)").ok());
  EXPECT_FALSE(Configuration::Parse(schema, "AB(A CD)").ok());  // CD ⊄ AB.
  EXPECT_FALSE(Configuration::Parse(schema, "AB(A B) AB").ok());  // Duplicate.
}

TEST(ConfigurationTest, QueryAndPhantomSetsRoundTrip) {
  const Schema schema = FourAttrs();
  const std::vector<AttributeSet> queries = {
      Set(schema, "AB"), Set(schema, "BC"), Set(schema, "BD"),
      Set(schema, "CD")};
  auto config =
      Configuration::Make(schema, queries, {Set(schema, "BCD")});
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->QuerySets(), queries);  // Stable query_index order.
  const auto phantoms = config->PhantomSets();
  ASSERT_EQ(phantoms.size(), 1u);
  EXPECT_EQ(phantoms[0], Set(schema, "BCD"));
}

TEST(ConfigurationTest, WithPhantomAddsRelation) {
  const Schema schema = FourAttrs();
  auto config = Configuration::Make(
      schema, {Set(schema, "A"), Set(schema, "B"), Set(schema, "C")}, {});
  ASSERT_TRUE(config.ok());
  auto bigger = config->WithPhantom(Set(schema, "AB"));
  ASSERT_TRUE(bigger.ok());
  EXPECT_EQ(bigger->num_phantoms(), 1);
  EXPECT_EQ(bigger->ToString(), "AB(A B) C");
  // Adding it again fails (duplicate).
  EXPECT_FALSE(bigger->WithPhantom(Set(schema, "AB")).ok());
}

TEST(ConfigurationTest, ToRuntimeSpecsTransfersStructure) {
  const Schema schema = FourAttrs();
  auto config = Configuration::Parse(schema, "ABC(A B C)");
  ASSERT_TRUE(config.ok());
  auto specs = config->ToRuntimeSpecs({100.7, 10.2, 10.9, 10.0});
  ASSERT_TRUE(specs.ok());
  ASSERT_EQ(specs->size(), 4u);
  EXPECT_EQ((*specs)[0].num_buckets, 100u);  // Floor of 100.7.
  EXPECT_FALSE((*specs)[0].is_query);
  EXPECT_EQ((*specs)[0].parent, -1);
  for (int i = 1; i < 4; ++i) {
    EXPECT_TRUE((*specs)[i].is_query);
    EXPECT_EQ((*specs)[i].parent, 0);
  }
}

TEST(ConfigurationTest, ToRuntimeSpecsValidatesBuckets) {
  const Schema schema = FourAttrs();
  auto config = Configuration::Parse(schema, "A B");
  ASSERT_TRUE(config.ok());
  EXPECT_FALSE(config->ToRuntimeSpecs({1.0}).ok());          // Wrong size.
  EXPECT_FALSE(config->ToRuntimeSpecs({1.0, 0.5}).ok());     // < 1 bucket.
  EXPECT_TRUE(config->ToRuntimeSpecs({1.0, 1.0}).ok());
}

}  // namespace
}  // namespace streamagg
