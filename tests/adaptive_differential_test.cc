// Randomized differential harness for drift-driven adaptive re-planning: a
// seeded workload generator drives distribution shifts (group-count growth
// and shrink, clusteredness flips) through serial, sharded and
// multi-producer adaptive engines, and every epoch's aggregates must stay
// bit-identical to the reference aggregator across re-plan boundaries —
// configurations (and re-configurations) change cost, never answers.
//
// Seeds are fixed and logged on failure; CI re-runs the binary under
// several seeds via STREAMAGG_DIFF_SEED (see .github/workflows/ci.yml).

#include <gtest/gtest.h>

#include <cstdlib>
#include <span>
#include <string>
#include <vector>

#include "core/engine.h"
#include "dsms/reference_aggregator.h"
#include "obs/telemetry.h"
#include "stream/uniform_generator.h"

namespace streamagg {
namespace {

/// Base seed for the randomized workloads; override with
/// STREAMAGG_DIFF_SEED=<n> to explore other draws (CI runs three).
uint64_t HarnessSeed() {
  if (const char* env = std::getenv("STREAMAGG_DIFF_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 4242;
}

/// One stretch of stream with a fixed distribution. `repeat` emits each
/// drawn group `repeat` times in a row (with advancing timestamps) — the
/// run-length clusteredness of the paper's tcpdump traces; 1 is uniform.
struct Phase {
  uint64_t groups;
  int repeat;
  double seconds;
  size_t records;
};

/// Materializes the concatenation of `phases`, each drawn from its own
/// seeded uniform universe, with timestamps spread evenly per phase.
Trace ShiftTrace(const Schema& schema, std::span<const Phase> phases,
                 uint64_t seed) {
  Trace trace(schema);
  double total = 0.0;
  for (const Phase& phase : phases) total += phase.seconds;
  trace.set_duration_seconds(total);
  double t0 = 0.0;
  uint64_t salt = 0;
  for (const Phase& phase : phases) {
    auto gen = std::move(UniformGenerator::Make(schema, phase.groups,
                                                seed + 977 * ++salt))
                   .value();
    size_t emitted = 0;
    while (emitted < phase.records) {
      const Record drawn = gen->Next();
      for (int j = 0; j < phase.repeat && emitted < phase.records; ++j) {
        Record r = drawn;
        r.timestamp = t0 + phase.seconds * static_cast<double>(emitted) /
                               static_cast<double>(phase.records);
        trace.Append(r);
        ++emitted;
      }
    }
    t0 += phase.seconds;
  }
  return trace;
}

StreamAggEngine::Options AdaptiveOptions(int producers, int shards) {
  StreamAggEngine::Options options;
  options.memory_words = 30000.0;
  options.sample_size = 10000;
  options.epoch_seconds = 2.0;
  options.clustered = false;
  options.adaptive = true;
  options.num_producers = producers;
  options.num_shards = shards;
  return options;
}

/// The engine splits the acceptance matrix runs over: P x S in {1,2}x{1,4}.
struct Split {
  int producers;
  int shards;
};
constexpr Split kSplits[] = {{1, 1}, {1, 4}, {2, 1}, {2, 4}};

/// Runs `trace` through an adaptive engine with the given split and asserts
/// every epoch of every query is bit-identical to the reference aggregate.
/// Returns the finished engine for scenario-specific assertions.
std::unique_ptr<StreamAggEngine> RunAndCheck(
    const Trace& trace, const std::vector<QueryDef>& queries,
    const StreamAggEngine::Options& options) {
  auto engine =
      StreamAggEngine::FromQueryDefs(trace.schema(), queries, options);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  if (!engine.ok()) return nullptr;
  for (const Record& r : trace.records()) {
    const Status status = (*engine)->Process(r);
    EXPECT_TRUE(status.ok()) << status.ToString();
    if (!status.ok()) return nullptr;
  }
  EXPECT_TRUE((*engine)->Finish().ok());

  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const auto expected = ComputeReferenceAggregate(
        trace, queries[qi].group_by, options.epoch_seconds);
    const std::vector<uint64_t> epochs =
        (*engine)->Epochs(static_cast<int>(qi));
    EXPECT_EQ(epochs.size(), expected.size()) << "query " << qi;
    for (const auto& [epoch, groups] : expected) {
      const EpochAggregate& actual =
          (*engine)->EpochResult(static_cast<int>(qi), epoch);
      EXPECT_EQ(actual.size(), groups.size())
          << "query " << qi << " epoch " << epoch;
      if (actual.size() != groups.size()) return nullptr;
      for (const auto& [key, state] : groups) {
        auto it = actual.find(key);
        if (it == actual.end()) {
          ADD_FAILURE() << "query " << qi << " epoch " << epoch
                        << " missing group " << key.ToString();
          return nullptr;
        }
        EXPECT_EQ(it->second.count, state.count)
            << "query " << qi << " epoch " << epoch << " " << key.ToString();
      }
    }
  }
  EXPECT_EQ((*engine)->counters().records, trace.size());
  return std::move(*engine);
}

std::vector<QueryDef> TwoQueries(const Schema& schema) {
  return {QueryDef(*schema.ParseAttributeSet("AB")),
          QueryDef(*schema.ParseAttributeSet("CD"))};
}

TEST(AdaptiveDifferentialTest, RandomizedShiftsMatchReferenceOnAllSplits) {
  const uint64_t seed = HarnessSeed();
  const Schema schema = *Schema::Default(4);
  const std::vector<QueryDef> queries = TwoQueries(schema);

  // Each workload is one kind of distribution shift. Whether (and when) a
  // given split's collision observations trip the trend detector may differ
  // — per-shard tables see different collision patterns than the serial
  // table — but the answers may not.
  struct Workload {
    const char* name;
    std::vector<Phase> phases;
  };
  const Workload workloads[] = {
      {"growth",
       {{400, 1, 4.0, 32000}, {3000, 1, 6.0, 48000}}},
      {"shrink",
       {{2500, 1, 4.0, 32000}, {500, 1, 6.0, 48000}}},
      {"cluster-flip",
       {{600, 1, 4.0, 32000}, {600, 6, 6.0, 48000}}},
  };

  for (const Workload& workload : workloads) {
    const Trace trace = ShiftTrace(schema, workload.phases, seed);
    for (const Split& split : kSplits) {
      SCOPED_TRACE("seed=" + std::to_string(seed) + " workload=" +
                   workload.name + " producers=" +
                   std::to_string(split.producers) + " shards=" +
                   std::to_string(split.shards));
      auto engine = RunAndCheck(
          trace, queries, AdaptiveOptions(split.producers, split.shards));
      ASSERT_NE(engine, nullptr);
      // Re-plans (however many fired) are all on the record.
      EXPECT_EQ(static_cast<int>(engine->telemetry().replans.size()),
                engine->reoptimizations());
    }
  }
}

TEST(AdaptiveDifferentialTest, UniformToClusteredTriggersExactlyOneReplan) {
  // The acceptance scenario: calm uniform traffic long enough to plan and
  // settle, then a mid-run shift to clustered traffic over 15x the groups.
  // Epochs 3 and 4 both drift beyond plan, so the K=2 trend fires once at
  // the epoch-4 barrier; the re-planned configuration matches the new
  // distribution and never fires again. Exactly one re-plan, on every
  // producer x shard split, with exact results throughout.
  const uint64_t seed = 515;
  const Schema schema = *Schema::Default(4);
  const std::vector<QueryDef> queries = TwoQueries(schema);
  const std::vector<Phase> phases = {
      {400, 1, 6.0, 60000},   // planned distribution
      {6000, 4, 6.0, 60000},  // clustered runs over a much larger universe
  };
  const Trace trace = ShiftTrace(schema, phases, seed);

  for (const Split& split : kSplits) {
    SCOPED_TRACE("seed=" + std::to_string(seed) + " producers=" +
                 std::to_string(split.producers) + " shards=" +
                 std::to_string(split.shards));
    auto engine = RunAndCheck(
        trace, queries, AdaptiveOptions(split.producers, split.shards));
    ASSERT_NE(engine, nullptr);
    EXPECT_EQ(engine->reoptimizations(), 1);

    // The re-plan event rides the telemetry snapshot and survives the JSON
    // round trip.
    const TelemetrySnapshot snapshot = engine->telemetry();
    ASSERT_EQ(snapshot.replans.size(), 1u);
    const ReplanEvent& event = snapshot.replans[0];
    EXPECT_EQ(event.epoch, 4u);
    EXPECT_FALSE(event.trigger_relation.empty());
    EXPECT_GT(event.drift, 0.0);
    EXPECT_GT(event.replanned_nodes, 0);
    auto parsed = TelemetrySnapshot::FromJsonLine(snapshot.ToJsonLine());
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    ASSERT_EQ(parsed->replans.size(), 1u);
    EXPECT_EQ(parsed->replans[0], event);
    EXPECT_EQ(parsed->reoptimizations, 1);
  }
}

TEST(AdaptiveDifferentialTest, SingleEpochSpikeTriggersNoReplan) {
  // A one-epoch noise burst (same 15x group blow-up, but gone by the next
  // epoch) must never trigger: the trend rule needs K=2 consecutive drifted
  // epochs, and the spike's window always contains a calm neighbor.
  const uint64_t seed = 515;
  const Schema schema = *Schema::Default(4);
  const std::vector<QueryDef> queries = TwoQueries(schema);
  const std::vector<Phase> phases = {
      {400, 1, 6.0, 60000},   // planned distribution
      {6000, 1, 2.0, 20000},  // exactly one drifted epoch
      {400, 1, 4.0, 40000},   // back to calm
  };
  const Trace trace = ShiftTrace(schema, phases, seed);

  for (const Split& split : kSplits) {
    SCOPED_TRACE("seed=" + std::to_string(seed) + " producers=" +
                 std::to_string(split.producers) + " shards=" +
                 std::to_string(split.shards));
    auto engine = RunAndCheck(
        trace, queries, AdaptiveOptions(split.producers, split.shards));
    ASSERT_NE(engine, nullptr);
    EXPECT_EQ(engine->reoptimizations(), 0);
    EXPECT_TRUE(engine->telemetry().replans.empty());
  }
}

TEST(AdaptiveDifferentialTest, SortModeFlipRoundTripStaysExact) {
  // Probe-mode policy differential (docs/probe_kernel.md §3): calm traffic
  // long enough to plan small tables, then a saturating blow-up that drives
  // the raw tables into sort-drain mode, then a tiny universe whose drains
  // dedup far below the bucket count — back to hash. Both flips are
  // flag-only swaps at epoch boundaries; every epoch of every query must
  // stay bit-identical to the reference across them, on every P x S split.
  const uint64_t seed = HarnessSeed();
  const Schema schema = *Schema::Default(4);
  const std::vector<QueryDef> queries = TwoQueries(schema);
  const std::vector<Phase> phases = {
      {200, 1, 6.0, 30000},   // planned distribution, tables fit
      {6000, 1, 8.0, 80000},  // groups >> buckets: saturated collisions
      {20, 1, 8.0, 80000},    // tiny universe: drains dedup to ~20 groups
  };
  const Trace trace = ShiftTrace(schema, phases, seed);

  for (const Split& split : kSplits) {
    SCOPED_TRACE("seed=" + std::to_string(seed) + " producers=" +
                 std::to_string(split.producers) + " shards=" +
                 std::to_string(split.shards));
    StreamAggEngine::Options options =
        AdaptiveOptions(split.producers, split.shards);
    options.memory_words = 6000.0;  // Small tables: phase 2 saturates them.
    // Isolate the probe-mode policy: drift re-plans are unreachable, so the
    // plan (and the snapshot run) stays fixed while modes flip.
    options.adaptive_options.deviation_threshold = 1e12;
    options.adaptive_options.sort_enter_collision_rate = 0.5;
    options.adaptive_options.sort_exit_unique_fraction = 0.9;
    auto engine = RunAndCheck(trace, queries, options);
    ASSERT_NE(engine, nullptr);
    EXPECT_EQ(engine->reoptimizations(), 0);

    // The history must witness a root table in sort mode mid-run...
    bool entered_sort = false;
    uint64_t peak_sort_appends = 0;
    for (const TelemetrySnapshot& snap : engine->telemetry_history()) {
      for (const TableTelemetry& table : snap.tables) {
        if (table.probe_mode != 0) entered_sort = true;
        peak_sort_appends = std::max(peak_sort_appends, table.sort_appends);
      }
    }
    EXPECT_TRUE(entered_sort) << "phase 2 never entered sort-drain mode";
    EXPECT_GT(peak_sort_appends, 0u);
    // ...and the final state must be back to hash everywhere, with the
    // sort-era tallies still on the record (no runtime swap reset them).
    const TelemetrySnapshot final_snapshot = engine->telemetry();
    bool saw_sort_history = false;
    for (const TableTelemetry& table : final_snapshot.tables) {
      EXPECT_EQ(table.probe_mode, 0) << table.relation;
      if (table.sort_appends > 0) saw_sort_history = true;
    }
    EXPECT_TRUE(saw_sort_history);
  }
}

}  // namespace
}  // namespace streamagg
