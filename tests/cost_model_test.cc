#include "core/cost_model.h"

#include <gtest/gtest.h>

namespace streamagg {
namespace {

// A fixture with a synthetic catalog and a transparent linear collision
// model (x = mu * g/b, alpha = 0) so expected costs can be written down in
// closed form.
class CostModelTest : public ::testing::Test {
 protected:
  CostModelTest()
      : schema_(*Schema::Default(4)),
        catalog_(*RelationCatalog::Synthetic(
            schema_,
            {
                {Set("A").mask(), 100},
                {Set("B").mask(), 100},
                {Set("C").mask(), 100},
                {Set("D").mask(), 100},
                {Set("AB").mask(), 400},
                {Set("ABC").mask(), 900},
                {Set("ABCD").mask(), 1600},
            })),
        linear_(/*alpha=*/0.0, /*mu=*/0.354),
        model_(&catalog_, &linear_, CostParams{1.0, 50.0}) {}

  AttributeSet Set(const std::string& spec) {
    return *schema_.ParseAttributeSet(spec);
  }

  double Rate(const std::string& spec, double buckets) {
    return 0.354 * static_cast<double>(catalog_.GroupCount(Set(spec))) /
           buckets;
  }

  Schema schema_;
  RelationCatalog catalog_;
  LinearCollisionModel linear_;
  CostModel model_;
};

TEST_F(CostModelTest, NoPhantomMatchesEquation1) {
  // Paper Section 2.5, Equation 1: E1 = 3 n c1 + 3 x1 n c2 (per record:
  // 3 c1 + 3 x1 c2).
  auto config =
      Configuration::Make(schema_, {Set("A"), Set("B"), Set("C")}, {});
  ASSERT_TRUE(config.ok());
  const std::vector<double> buckets = {200.0, 200.0, 200.0};
  const double x1 = Rate("A", 200.0);
  const double expected = 3.0 * 1.0 + 3.0 * x1 * 50.0;
  EXPECT_NEAR(model_.PerRecordCost(*config, buckets), expected, 1e-12);
}

TEST_F(CostModelTest, OnePhantomMatchesEquation2) {
  // Paper Section 2.5, Equation 2: E2 = c1 + 3 x2 c1 + 3 x1 x2 c2 per
  // record, where x2 is the phantom's rate and x1 the queries'.
  auto config = Configuration::Make(
      schema_, {Set("A"), Set("B"), Set("C")}, {Set("ABC")});
  ASSERT_TRUE(config.ok());
  // Node order: ABC first (raw), then A, B, C.
  const std::vector<double> buckets = {450.0, 50.0, 50.0, 50.0};
  const double x2 = Rate("ABC", 450.0);
  const double x1 = Rate("A", 50.0);
  const double expected = 1.0 + 3.0 * x2 * 1.0 + 3.0 * x1 * x2 * 50.0;
  EXPECT_NEAR(model_.PerRecordCost(*config, buckets), expected, 1e-12);
}

TEST_F(CostModelTest, AncestorRatesMultiplyAlongChains) {
  // ABCD feeds ABC feeds AB feeds A: the probe stream thins by the product
  // of ancestor collision rates (Equation 7).
  auto config = Configuration::Make(
      schema_, {Set("A")}, {Set("AB"), Set("ABC"), Set("ABCD")});
  ASSERT_TRUE(config.ok());
  // Node order by construction: ABCD, ABC, AB, A.
  const std::vector<double> buckets = {3200.0, 1800.0, 800.0, 200.0};
  const double x_abcd = Rate("ABCD", 3200.0);
  const double x_abc = Rate("ABC", 1800.0);
  const double x_ab = Rate("AB", 800.0);
  const double x_a = Rate("A", 200.0);
  const double expected_c1 =
      1.0 + x_abcd + x_abcd * x_abc + x_abcd * x_abc * x_ab;
  const double expected_c2 = x_abcd * x_abc * x_ab * x_a * 50.0;
  EXPECT_NEAR(model_.PerRecordCost(*config, buckets),
              expected_c1 + expected_c2, 1e-12);
}

TEST_F(CostModelTest, NonLeafQueryPaysEvictionToo) {
  // Query AB feeding query A: AB's evictions transfer to the HFTA *and*
  // probe A.
  auto config = Configuration::Make(schema_, {Set("AB"), Set("A")}, {});
  ASSERT_TRUE(config.ok());
  const std::vector<double> buckets = {800.0, 200.0};
  const double x_ab = Rate("AB", 800.0);
  const double x_a = Rate("A", 200.0);
  const double expected =
      (1.0 + x_ab) * 1.0 + (x_ab + x_ab * x_a) * 50.0;
  EXPECT_NEAR(model_.PerRecordCost(*config, buckets), expected, 1e-12);
}

TEST_F(CostModelTest, MorePhantomSpaceLowersCostUntilQueriesStarve) {
  // Sanity on the tradeoff the paper optimizes: with a beneficial phantom,
  // the cost is not monotone in how much space the phantom takes.
  auto config = Configuration::Make(
      schema_, {Set("A"), Set("B"), Set("C")}, {Set("ABC")});
  ASSERT_TRUE(config.ok());
  const double total_words = 10000.0;
  auto cost_with_phantom_words = [&](double phantom_words) {
    const double per_query = (total_words - phantom_words) / 3.0;
    return model_.PerRecordCost(
        *config, {phantom_words / 4.0, per_query / 2.0, per_query / 2.0,
                  per_query / 2.0});
  };
  const double starving_phantom = cost_with_phantom_words(500.0);
  const double balanced = cost_with_phantom_words(7000.0);
  const double starving_queries = cost_with_phantom_words(9900.0);
  EXPECT_LT(balanced, starving_phantom);
  EXPECT_LT(balanced, starving_queries);
}

TEST_F(CostModelTest, EndOfEpochCostForFlatConfiguration) {
  // No phantoms: E_u = c2 * sum of flushed entries, where a table flushes
  // its expected occupancy g (1 - x_random) (see DESIGN.md on Equation 8).
  auto config =
      Configuration::Make(schema_, {Set("A"), Set("B"), Set("C")}, {});
  ASSERT_TRUE(config.ok());
  const std::vector<double> buckets = {100.0, 200.0, 300.0};
  double expected_entries = 0.0;
  for (double b : buckets) {
    expected_entries += 100.0 * (1.0 - RandomHashCollisionRate(100.0, b));
  }
  EXPECT_NEAR(model_.EndOfEpochCost(*config, buckets), expected_entries * 50.0,
              1e-9);
}

TEST_F(CostModelTest, EndOfEpochCostPropagatesThroughPhantom) {
  // ABC(A B C): flushing ABC probes each child occ_ABC times (c1); each
  // child evicts occ_child + occ_ABC * x_child entries (c2).
  auto config = Configuration::Make(
      schema_, {Set("A"), Set("B"), Set("C")}, {Set("ABC")});
  ASSERT_TRUE(config.ok());
  const std::vector<double> buckets = {450.0, 50.0, 60.0, 70.0};
  const double occ_abc =
      900.0 * (1.0 - RandomHashCollisionRate(900.0, 450.0));
  const double expected_c1 = 3.0 * occ_abc;
  double expected_c2 = 0.0;
  for (double b : {50.0, 60.0, 70.0}) {
    const double occ = 100.0 * (1.0 - RandomHashCollisionRate(100.0, b));
    expected_c2 += occ + occ_abc * std::min(1.0, Rate("A", b));
  }
  EXPECT_NEAR(model_.EndOfEpochCost(*config, buckets),
              expected_c1 + expected_c2 * 50.0, 1e-9);
}

TEST_F(CostModelTest, EndOfEpochGrowsWithTableSizes) {
  auto config = Configuration::Make(
      schema_, {Set("A"), Set("B"), Set("C")}, {Set("ABC")});
  ASSERT_TRUE(config.ok());
  const double small = model_.EndOfEpochCost(*config, {100, 20, 20, 20});
  const double large = model_.EndOfEpochCost(*config, {1000, 200, 200, 200});
  EXPECT_GT(large, small);
}

TEST_F(CostModelTest, Equation3SignAnalysis) {
  // Paper Section 2.5, Equation 3: E1 - E2 = [(2 - 3 x2) c1 +
  // 3 (x1 - x1' x2) c2] n. The phantom pays off when its collision rate x2
  // is small and hurts when x2 is large. We sweep the phantom's table size
  // (which controls x2) and check the benefit changes sign exactly when
  // Equation 3 does.
  auto with_phantom = Configuration::Make(
      schema_, {Set("A"), Set("B"), Set("C")}, {Set("ABC")});
  auto without = Configuration::Make(
      schema_, {Set("A"), Set("B"), Set("C")}, {});
  ASSERT_TRUE(with_phantom.ok());
  ASSERT_TRUE(without.ok());
  const double total_words = 3000.0;
  for (double phantom_fraction : {0.3, 0.5, 0.7, 0.9}) {
    // With the phantom: split its fraction, queries share the rest.
    const double phantom_buckets = total_words * phantom_fraction / 4.0;
    const double query_buckets_with =
        total_words * (1.0 - phantom_fraction) / 3.0 / 2.0;
    const double e2 = model_.PerRecordCost(
        *with_phantom,
        {phantom_buckets, query_buckets_with, query_buckets_with,
         query_buckets_with});
    // Without: queries share everything.
    const double query_buckets_without = total_words / 3.0 / 2.0;
    const double e1 = model_.PerRecordCost(
        *without, {query_buckets_without, query_buckets_without,
                   query_buckets_without});
    // Equation 3 with x1' (queries without phantom) and x1 (with phantom):
    const double x2 = std::min(1.0, Rate("ABC", phantom_buckets));
    const double x1_with = std::min(1.0, Rate("A", query_buckets_with));
    const double x1_without = std::min(1.0, Rate("A", query_buckets_without));
    const double predicted_gain =
        (2.0 - 3.0 * x2) * 1.0 + 3.0 * (x1_without - x1_with * x2) * 50.0;
    EXPECT_NEAR(e1 - e2, predicted_gain, 1e-9)
        << "phantom fraction " << phantom_fraction;
  }
}

TEST_F(CostModelTest, NoPhantomCostHelper) {
  std::vector<Relation> queries = {catalog_.Get(Set("A")),
                                   catalog_.Get(Set("B"))};
  const double x = Rate("A", 100.0);
  EXPECT_NEAR(model_.NoPhantomCost(queries, {100.0, 100.0}),
              2.0 * (1.0 + x * 50.0), 1e-12);
}

TEST_F(CostModelTest, ClusteredDataLowersCost) {
  auto clustered_catalog = RelationCatalog::Synthetic(
      schema_,
      {
          {Set("A").mask(), 100},
          {Set("B").mask(), 100},
          {Set("C").mask(), 100},
          {Set("D").mask(), 100},
          {Set("ABC").mask(), 900},
      },
      /*flow_length=*/20.0);
  ASSERT_TRUE(clustered_catalog.ok());
  CostModel clustered_model(&*clustered_catalog, &linear_, CostParams{1, 50});
  auto config = Configuration::Make(
      schema_, {Set("A"), Set("B"), Set("C")}, {Set("ABC")});
  ASSERT_TRUE(config.ok());
  const std::vector<double> buckets = {450.0, 50.0, 50.0, 50.0};
  EXPECT_LT(clustered_model.PerRecordCost(*config, buckets),
            model_.PerRecordCost(*config, buckets));
}

}  // namespace
}  // namespace streamagg
