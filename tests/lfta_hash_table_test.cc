#include "dsms/lfta_hash_table.h"

#include <unordered_map>

#include <gtest/gtest.h>

#include "util/math.h"
#include "util/random.h"

namespace streamagg {
namespace {

GroupKey Key1(uint32_t v) {
  GroupKey k;
  k.size = 1;
  k.values[0] = v;
  return k;
}

GroupKey Key2(uint32_t a, uint32_t b) {
  GroupKey k;
  k.size = 2;
  k.values[0] = a;
  k.values[1] = b;
  return k;
}

TEST(LftaHashTableTest, InsertUpdateSequence) {
  LftaHashTable table(16, 1, 1);
  GroupKey evicted;
  uint64_t evicted_count = 0;
  EXPECT_EQ(table.Probe(Key1(5), 1, &evicted, &evicted_count),
            ProbeOutcome::kInserted);
  EXPECT_EQ(table.Probe(Key1(5), 1, &evicted, &evicted_count),
            ProbeOutcome::kUpdated);
  EXPECT_EQ(table.occupied_buckets(), 1u);
  EXPECT_EQ(table.probes(), 2u);
  EXPECT_EQ(table.updates(), 1u);
  EXPECT_EQ(table.collisions(), 0u);
}

TEST(LftaHashTableTest, CollisionEvictsResidentGroup) {
  // A single bucket forces every distinct group to collide.
  LftaHashTable table(1, 1, 1);
  GroupKey evicted;
  uint64_t evicted_count = 0;
  EXPECT_EQ(table.Probe(Key1(5), 1, &evicted, &evicted_count),
            ProbeOutcome::kInserted);
  EXPECT_EQ(table.Probe(Key1(5), 3, &evicted, &evicted_count),
            ProbeOutcome::kUpdated);
  EXPECT_EQ(table.Probe(Key1(9), 2, &evicted, &evicted_count),
            ProbeOutcome::kCollision);
  EXPECT_EQ(evicted.values[0], 5u);
  EXPECT_EQ(evicted_count, 4u);
  // The new group is resident with its own count.
  EXPECT_EQ(table.Probe(Key1(9), 1, &evicted, &evicted_count),
            ProbeOutcome::kUpdated);
}

TEST(LftaHashTableTest, PaperSection22Example) {
  // Stream prefix 2, 24, 2, 2, 3, 17, 3, 4 (paper Section 2.2): after the
  // first seven records the table holds (2,3), (24,1), (3,2), (17,1); the
  // eighth record 4 evicts an entry if it maps to an occupied bucket of a
  // different group. We verify counts by draining the table.
  LftaHashTable table(10, 1, 42);
  std::unordered_map<uint32_t, uint64_t> evicted_total;
  auto probe = [&](uint32_t v) {
    GroupKey e;
    uint64_t c = 0;
    if (table.Probe(Key1(v), 1, &e, &c) == ProbeOutcome::kCollision) {
      evicted_total[e.values[0]] += c;
    }
  };
  for (uint32_t v : {2u, 24u, 2u, 2u, 3u, 17u, 3u, 4u}) probe(v);
  std::unordered_map<uint32_t, uint64_t> final_counts = evicted_total;
  table.Flush([&](const GroupKey& k, uint64_t c) {
    final_counts[k.values[0]] += c;
  });
  EXPECT_EQ(final_counts[2], 3u);
  EXPECT_EQ(final_counts[24], 1u);
  EXPECT_EQ(final_counts[3], 2u);
  EXPECT_EQ(final_counts[17], 1u);
  EXPECT_EQ(final_counts[4], 1u);
}

TEST(LftaHashTableTest, FlushDrainsEverything) {
  LftaHashTable table(64, 2, 7);
  for (uint32_t i = 0; i < 40; ++i) {
    table.Probe(Key2(i, i * 3), 1, nullptr, nullptr);
  }
  const uint64_t occupied_before = table.occupied_buckets();
  uint64_t flushed_count = 0;
  uint64_t flushed_entries = 0;
  table.Flush([&](const GroupKey& k, uint64_t c) {
    EXPECT_EQ(k.size, 2);
    flushed_count += c;
    ++flushed_entries;
  });
  EXPECT_EQ(flushed_entries, occupied_before);
  EXPECT_EQ(table.occupied_buckets(), 0u);
  // Counts are conserved: inserts+updates (all count 1) minus evictions.
  EXPECT_EQ(flushed_count + /*evicted during probes=*/table.collisions(), 40u);
  // Flushing again yields nothing.
  table.Flush([&](const GroupKey&, uint64_t) { FAIL(); });
}

TEST(LftaHashTableTest, CountsAreConservedUnderChurn) {
  LftaHashTable table(32, 1, 3);
  Random rng(99);
  uint64_t evicted_total = 0;
  const uint64_t kProbes = 10000;
  for (uint64_t i = 0; i < kProbes; ++i) {
    GroupKey e;
    uint64_t c = 0;
    if (table.Probe(Key1(static_cast<uint32_t>(rng.Uniform(200))), 1, &e, &c) ==
        ProbeOutcome::kCollision) {
      evicted_total += c;
    }
  }
  uint64_t resident = 0;
  table.ForEach([&](const GroupKey&, uint64_t c) { resident += c; });
  EXPECT_EQ(evicted_total + resident, kProbes);
}

TEST(LftaHashTableTest, MemoryAccountingMatchesPaper) {
  // b buckets of (a attributes + 1 counter) 4-byte words (Section 6.1).
  LftaHashTable t1(100, 1, 1);
  EXPECT_EQ(t1.memory_words(), 200u);
  LftaHashTable t4(100, 4, 1);
  EXPECT_EQ(t4.memory_words(), 500u);
}

TEST(LftaHashTableTest, EmpiricalCollisionRateTracksModel) {
  // Uniform groups through a table: the rate of a single table is
  // 1 - occupied/g for the realized group->bucket assignment, so individual
  // realizations vary; the *average over hash seeds* must match the precise
  // model (paper Section 4.2, Figure 5).
  for (double ratio : {0.5, 1.0, 3.0}) {
    const uint64_t b = 1000;
    const uint64_t g = static_cast<uint64_t>(b * ratio);
    double sum_rate = 0.0;
    const int kSeeds = 8;
    for (int seed = 0; seed < kSeeds; ++seed) {
      LftaHashTable table(b, 1, 12345 + seed * 7919);
      Random rng(777 + seed);
      const uint64_t kProbes = 100000;
      for (uint64_t i = 0; i < kProbes; ++i) {
        table.Probe(Key1(static_cast<uint32_t>(rng.Uniform(g))), 1, nullptr,
                    nullptr);
      }
      sum_rate += table.CollisionRate();
    }
    const double measured = sum_rate / kSeeds;
    const double expected = RandomHashCollisionRate(static_cast<double>(g),
                                                    static_cast<double>(b));
    EXPECT_NEAR(measured, expected, 0.05 * expected + 0.01) << "g/b=" << ratio;
  }
}

TEST(LftaHashTableTest, ResetStatsClearsCounters) {
  LftaHashTable table(8, 1, 1);
  table.Probe(Key1(1), 1, nullptr, nullptr);
  table.Probe(Key1(1), 1, nullptr, nullptr);
  table.ResetStats();
  EXPECT_EQ(table.probes(), 0u);
  EXPECT_EQ(table.updates(), 0u);
  EXPECT_EQ(table.collisions(), 0u);
  // Contents survive a stats reset.
  EXPECT_EQ(table.occupied_buckets(), 1u);
}

}  // namespace
}  // namespace streamagg
