#include "stream/record.h"

#include <unordered_set>

#include <gtest/gtest.h>

namespace streamagg {
namespace {

Record MakeRecord(std::initializer_list<uint32_t> values) {
  Record r;
  int i = 0;
  for (uint32_t v : values) r.values[i++] = v;
  return r;
}

TEST(GroupKeyTest, ProjectPicksAttributesInOrder) {
  const Record r = MakeRecord({10, 20, 30, 40});
  const GroupKey key = GroupKey::Project(r, AttributeSet::Of({0, 2}));
  ASSERT_EQ(key.size, 2);
  EXPECT_EQ(key.values[0], 10u);
  EXPECT_EQ(key.values[1], 30u);
}

TEST(GroupKeyTest, ProjectFullSet) {
  const Record r = MakeRecord({1, 2, 3});
  const GroupKey key = GroupKey::Project(r, AttributeSet::Of({0, 1, 2}));
  ASSERT_EQ(key.size, 3);
  EXPECT_EQ(key.ToString(), "(1,2,3)");
}

TEST(GroupKeyTest, ProjectKeyOntoSubset) {
  const Record r = MakeRecord({10, 20, 30, 40});
  const AttributeSet abc = AttributeSet::Of({0, 1, 2});
  const GroupKey abc_key = GroupKey::Project(r, abc);
  const GroupKey b_key =
      GroupKey::ProjectKey(abc_key, abc, AttributeSet::Single(1));
  ASSERT_EQ(b_key.size, 1);
  EXPECT_EQ(b_key.values[0], 20u);

  const GroupKey ac_key =
      GroupKey::ProjectKey(abc_key, abc, AttributeSet::Of({0, 2}));
  ASSERT_EQ(ac_key.size, 2);
  EXPECT_EQ(ac_key.values[0], 10u);
  EXPECT_EQ(ac_key.values[1], 30u);
}

TEST(GroupKeyTest, ProjectKeyEqualsDirectProjection) {
  const Record r = MakeRecord({7, 8, 9, 10});
  const AttributeSet from = AttributeSet::Of({1, 2, 3});
  const AttributeSet to = AttributeSet::Of({1, 3});
  const GroupKey direct = GroupKey::Project(r, to);
  const GroupKey via = GroupKey::ProjectKey(GroupKey::Project(r, from), from, to);
  EXPECT_TRUE(direct == via);
}

TEST(GroupKeyTest, EqualityIncludesSize) {
  GroupKey a;
  a.size = 2;
  a.values[0] = 1;
  a.values[1] = 2;
  GroupKey b = a;
  EXPECT_TRUE(a == b);
  b.size = 1;
  EXPECT_FALSE(a == b);
  b = a;
  b.values[1] = 3;
  EXPECT_FALSE(a == b);
}

TEST(GroupKeyTest, HashDistinguishesKeys) {
  std::unordered_set<GroupKey, GroupKeyHash> set;
  for (uint32_t i = 0; i < 1000; ++i) {
    GroupKey k;
    k.size = 2;
    k.values[0] = i;
    k.values[1] = i * 31;
    set.insert(k);
  }
  EXPECT_EQ(set.size(), 1000u);
}

}  // namespace
}  // namespace streamagg
