#include "core/engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <span>

#include "dsms/reference_aggregator.h"
#include "stream/uniform_generator.h"

namespace streamagg {
namespace {

StreamAggEngine::Options BaseOptions() {
  StreamAggEngine::Options options;
  options.memory_words = 30000.0;
  options.sample_size = 20000;
  options.epoch_seconds = 2.0;
  options.clustered = false;
  return options;
}

Trace UniformTrace(uint64_t groups, size_t n, uint64_t seed) {
  auto gen = std::move(UniformGenerator::Make(*Schema::Default(4), groups,
                                              seed))
                 .value();
  return Trace::Generate(*gen, n, 10.0);
}

TEST(StreamAggEngineTest, EndToEndResultsAreExact) {
  const Trace trace = UniformTrace(800, 100000, 5);
  const Schema& schema = trace.schema();
  const std::vector<QueryDef> queries = {
      QueryDef(*schema.ParseAttributeSet("AB")),
      QueryDef(*schema.ParseAttributeSet("BC")),
      QueryDef(*schema.ParseAttributeSet("CD")),
  };
  auto engine =
      StreamAggEngine::FromQueryDefs(schema, queries, BaseOptions());
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_FALSE((*engine)->planned());
  for (const Record& r : trace.records()) {
    ASSERT_TRUE((*engine)->Process(r).ok());
  }
  EXPECT_TRUE((*engine)->planned());
  EXPECT_FALSE((*engine)->ConfigurationText().empty());
  ASSERT_TRUE((*engine)->Finish().ok());

  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const auto expected =
        ComputeReferenceAggregate(trace, queries[qi].group_by, 2.0);
    for (const auto& [epoch, groups] : expected) {
      const EpochAggregate& actual =
          (*engine)->EpochResult(static_cast<int>(qi), epoch);
      ASSERT_EQ(actual.size(), groups.size())
          << "query " << qi << " epoch " << epoch;
      for (const auto& [key, state] : groups) {
        auto it = actual.find(key);
        ASSERT_NE(it, actual.end());
        EXPECT_EQ(it->second.count, state.count);
      }
    }
  }
  // All records accounted for.
  EXPECT_EQ((*engine)->counters().records, trace.size());
}

TEST(StreamAggEngineTest, WorksFromQueryTexts) {
  const Trace trace = UniformTrace(500, 60000, 7);
  auto engine = StreamAggEngine::FromQueryTexts(
      trace.schema(),
      {"select A, count(*) from R group by A, time/2",
       "select B, count(*) from R group by B, time/2"},
      BaseOptions());
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  for (const Record& r : trace.records()) {
    ASSERT_TRUE((*engine)->Process(r).ok());
  }
  ASSERT_TRUE((*engine)->Finish().ok());
  ASSERT_EQ((*engine)->parsed_queries().size(), 2u);
  // Epochs come from the query text (time/2 over a 10-second trace).
  const std::vector<uint64_t> epochs = (*engine)->Epochs(0);
  EXPECT_EQ(epochs.size(), 5u);
  const auto expected = ComputeReferenceAggregate(
      trace, AttributeSet::Single(0), 2.0);
  for (uint64_t epoch : epochs) {
    EXPECT_EQ((*engine)->EpochResult(0, epoch).size(), expected.at(epoch).size());
  }
}

TEST(StreamAggEngineTest, ShortStreamPlansAtFinish) {
  const Trace trace = UniformTrace(300, 5000, 9);  // Below the sample size.
  const Schema& schema = trace.schema();
  auto engine = StreamAggEngine::FromQueryDefs(
      schema, {QueryDef(*schema.ParseAttributeSet("AB"))}, BaseOptions());
  ASSERT_TRUE(engine.ok());
  for (const Record& r : trace.records()) {
    ASSERT_TRUE((*engine)->Process(r).ok());
  }
  EXPECT_FALSE((*engine)->planned());  // Still sampling.
  ASSERT_TRUE((*engine)->Finish().ok());
  const auto expected =
      ComputeReferenceAggregate(trace, *schema.ParseAttributeSet("AB"), 2.0);
  uint64_t total = 0;
  for (uint64_t epoch : (*engine)->Epochs(0)) {
    for (const auto& [key, state] : (*engine)->EpochResult(0, epoch)) {
      total += state.count;
    }
  }
  EXPECT_EQ(total, trace.size());
  (void)expected;
}

TEST(StreamAggEngineTest, AdaptiveSwapPreservesResults) {
  // Calm traffic for 3 epochs, then a 10x group blow-up: with adaptivity on
  // the engine re-plans mid-stream; every epoch's counts must still be
  // exact across the runtime swap.
  const Schema schema = *Schema::Default(4);
  auto calm = std::move(UniformGenerator::Make(schema, 500, 11)).value();
  auto shifted = std::move(UniformGenerator::Make(schema, 5000, 13)).value();
  Trace trace(schema);
  const size_t kN = 120000;
  trace.set_duration_seconds(12.0);
  for (size_t i = 0; i < kN; ++i) {
    Record r = (i < kN / 2) ? calm->Next() : shifted->Next();
    r.timestamp = 12.0 * static_cast<double>(i) / kN;
    trace.Append(r);
  }

  StreamAggEngine::Options options = BaseOptions();
  options.adaptive = true;
  options.sample_size = 10000;
  const std::vector<QueryDef> queries = {
      QueryDef(*schema.ParseAttributeSet("AB")),
      QueryDef(*schema.ParseAttributeSet("CD")),
  };
  auto engine = StreamAggEngine::FromQueryDefs(schema, queries, options);
  ASSERT_TRUE(engine.ok());
  for (const Record& r : trace.records()) {
    ASSERT_TRUE((*engine)->Process(r).ok());
  }
  ASSERT_TRUE((*engine)->Finish().ok());
  EXPECT_GE((*engine)->reoptimizations(), 1);

  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const auto expected =
        ComputeReferenceAggregate(trace, queries[qi].group_by, 2.0);
    for (const auto& [epoch, groups] : expected) {
      const EpochAggregate& actual =
          (*engine)->EpochResult(static_cast<int>(qi), epoch);
      ASSERT_EQ(actual.size(), groups.size())
          << "query " << qi << " epoch " << epoch;
      for (const auto& [key, state] : groups) {
        auto it = actual.find(key);
        ASSERT_NE(it, actual.end()) << key.ToString();
        EXPECT_EQ(it->second.count, state.count) << key.ToString();
      }
    }
  }
  EXPECT_EQ((*engine)->counters().records, trace.size());
}

TEST(StreamAggEngineTest, SharedWhereClauseFiltersRecords) {
  const Trace trace = UniformTrace(400, 60000, 21);
  const Schema& schema = trace.schema();
  // Keep only records with D < 4 (the universe draws D from a domain of
  // ~11 values, so this passes roughly a third of the stream).
  auto engine = StreamAggEngine::FromQueryTexts(
      schema,
      {"select A, count(*) from R where D < 4 group by A, time/2",
       "select B, count(*) from R where D < 4 group by B, time/2"},
      BaseOptions());
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  for (const Record& r : trace.records()) {
    ASSERT_TRUE((*engine)->Process(r).ok());
  }
  ASSERT_TRUE((*engine)->Finish().ok());

  // Reference: aggregate only the passing records.
  Trace filtered(schema);
  for (const Record& r : trace.records()) {
    if (r.values[3] < 4) filtered.Append(r);
  }
  ASSERT_GT(filtered.size(), 0u);
  ASSERT_LT(filtered.size(), trace.size());
  const auto expected =
      ComputeReferenceAggregate(filtered, AttributeSet::Single(0), 2.0);
  uint64_t total = 0;
  for (uint64_t epoch : (*engine)->Epochs(0)) {
    const EpochAggregate& actual = (*engine)->EpochResult(0, epoch);
    ASSERT_EQ(actual.size(), expected.at(epoch).size()) << "epoch " << epoch;
    for (const auto& [key, state] : actual) total += state.count;
  }
  EXPECT_EQ(total, filtered.size());
  EXPECT_EQ((*engine)->counters().records, filtered.size());
}

TEST(StreamAggEngineTest, PinnedPlanSkipsSampling) {
  const Trace trace = UniformTrace(500, 50000, 31);
  const Schema& schema = trace.schema();
  const std::vector<QueryDef> queries = {
      QueryDef(*schema.ParseAttributeSet("AB")),
      QueryDef(*schema.ParseAttributeSet("CD"))};
  // Build a plan offline...
  TraceStats stats(&trace);
  const RelationCatalog catalog =
      RelationCatalog::FromTrace(&stats, /*clustered=*/false);
  Optimizer optimizer;
  OptimizedPlan plan = *optimizer.Optimize(catalog, queries, 30000.0);
  const std::string config_text = plan.config.ToString();

  // ...and pin it: the engine is live from the first record.
  auto engine = StreamAggEngine::FromPinnedPlan(schema, std::move(plan), {},
                                                BaseOptions());
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_TRUE((*engine)->planned());
  EXPECT_EQ((*engine)->ConfigurationText(), config_text);
  for (const Record& r : trace.records()) {
    ASSERT_TRUE((*engine)->Process(r).ok());
  }
  ASSERT_TRUE((*engine)->Finish().ok());
  const auto expected =
      ComputeReferenceAggregate(trace, queries[0].group_by, 2.0);
  for (const auto& [epoch, groups] : expected) {
    EXPECT_EQ((*engine)->EpochResult(0, epoch).size(), groups.size());
  }
  EXPECT_EQ((*engine)->counters().records, trace.size());
}

TEST(StreamAggEngineTest, AdaptivePinnedPlanNeedsCounts) {
  const Schema schema = *Schema::Default(4);
  auto catalog = RelationCatalog::Synthetic(
      schema, {{AttributeSet::Single(0).mask(), 100},
               {AttributeSet::Single(1).mask(), 100},
               {AttributeSet::Single(2).mask(), 100},
               {AttributeSet::Single(3).mask(), 100}});
  Optimizer optimizer;
  OptimizedPlan plan = *optimizer.Optimize(
      *catalog,
      std::vector<QueryDef>{QueryDef(*schema.ParseAttributeSet("AB"))},
      20000.0);
  StreamAggEngine::Options options = BaseOptions();
  options.adaptive = true;
  EXPECT_FALSE(
      StreamAggEngine::FromPinnedPlan(schema, std::move(plan), {}, options)
          .ok());
}

TEST(StreamAggEngineTest, RejectsBadConstruction) {
  const Schema schema = *Schema::Default(3);
  EXPECT_FALSE(
      StreamAggEngine::FromQueryDefs(schema, {}, BaseOptions()).ok());
  EXPECT_FALSE(StreamAggEngine::FromQueryTexts(schema, {"select nope"},
                                               BaseOptions())
                   .ok());
  EXPECT_FALSE(StreamAggEngine::FromQueryTexts(
                   schema,
                   {"select A, count(*) from R group by A, time/60",
                    "select B, count(*) from R group by B, time/30"},
                   BaseOptions())
                   .ok());
}

TEST(StreamAggEngineTest, CountersIdempotentAcrossSwapsAndBatches) {
  // Regression: counters() and the internal accumulation across adaptive
  // runtime swaps must never double-count, no matter how often or when the
  // totals are read, and no matter how Process/ProcessBatch are mixed.
  const Schema schema = *Schema::Default(4);
  auto calm = std::move(UniformGenerator::Make(schema, 500, 21)).value();
  auto shifted = std::move(UniformGenerator::Make(schema, 5000, 23)).value();
  Trace trace(schema);
  const size_t kN = 120000;
  trace.set_duration_seconds(12.0);
  for (size_t i = 0; i < kN; ++i) {
    Record r = (i < kN / 2) ? calm->Next() : shifted->Next();
    r.timestamp = 12.0 * static_cast<double>(i) / kN;
    trace.Append(r);
  }

  StreamAggEngine::Options options = BaseOptions();
  options.adaptive = true;
  options.sample_size = 10000;
  auto engine = StreamAggEngine::FromQueryDefs(
      schema,
      {QueryDef(*schema.ParseAttributeSet("AB")),
       QueryDef(*schema.ParseAttributeSet("CD"))},
      options);
  ASSERT_TRUE(engine.ok());

  // Alternate odd-sized batches with single records so runtime swaps land
  // at every possible position relative to the reads below.
  const std::span<const Record> records(trace.records());
  size_t i = 0;
  uint64_t last_records = 0;
  while (i < records.size()) {
    if (i % 3 == 0) {
      ASSERT_TRUE((*engine)->Process(records[i]).ok());
      ++i;
    } else {
      const size_t n = std::min<size_t>(257, records.size() - i);
      ASSERT_TRUE((*engine)->ProcessBatch(records.subspan(i, n)).ok());
      i += n;
    }
    // Reading totals mid-stream must be side-effect free (idempotent) and
    // exact: records processed so far, monotonically. (While sampling,
    // records are buffered and the count is behind; it catches up at the
    // planning replay.)
    const RuntimeCounters first = (*engine)->counters();
    const RuntimeCounters second = (*engine)->counters();
    EXPECT_TRUE(first == second);
    if ((*engine)->planned()) {
      EXPECT_EQ(first.records, i);
    }
    EXPECT_GE(first.records, last_records);
    last_records = first.records;
  }
  ASSERT_TRUE((*engine)->Finish().ok());
  // The traffic shift must actually have forced at least one swap for this
  // test to mean anything.
  EXPECT_GE((*engine)->reoptimizations(), 1);
  EXPECT_EQ((*engine)->counters().records, trace.size());
  // Reading after Finish is stable too.
  EXPECT_TRUE((*engine)->counters() == (*engine)->counters());
}

TEST(StreamAggEngineTest, TelemetryReportsModelPredictions) {
  const Trace trace = UniformTrace(800, 80000, 31);
  const Schema& schema = trace.schema();
  auto engine = StreamAggEngine::FromQueryDefs(
      schema,
      {QueryDef(*schema.ParseAttributeSet("AB")),
       QueryDef(*schema.ParseAttributeSet("BC")),
       QueryDef(*schema.ParseAttributeSet("CD"))},
      BaseOptions());
  ASSERT_TRUE(engine.ok());
  // While sampling, telemetry is an empty snapshot.
  EXPECT_TRUE((*engine)->telemetry().tables.empty());
  for (const Record& r : trace.records()) {
    ASSERT_TRUE((*engine)->Process(r).ok());
  }
  const TelemetrySnapshot live = (*engine)->telemetry();
  ASSERT_FALSE(live.tables.empty());
  for (const TableTelemetry& t : live.tables) {
    // Engine-annotated snapshots pair every table's observed rate with the
    // cost model's prediction for the planned statistics.
    EXPECT_TRUE(t.has_prediction()) << t.relation;
    EXPECT_GE(t.predicted_collision_rate, 0.0) << t.relation;
    EXPECT_LT(t.predicted_collision_rate, 1.0) << t.relation;
    EXPECT_GE(t.observed_collision_rate, 0.0) << t.relation;
    EXPECT_EQ(t.drift(),
              t.observed_collision_rate - t.predicted_collision_rate);
  }
  EXPECT_TRUE(live.counters == (*engine)->counters());

  ASSERT_TRUE((*engine)->Finish().ok());
  // The final snapshot survives runtime teardown and keeps the totals.
  const TelemetrySnapshot final_snap = (*engine)->telemetry();
  ASSERT_FALSE(final_snap.tables.empty());
  EXPECT_EQ(final_snap.counters.records, trace.size());
  EXPECT_TRUE(final_snap.counters == (*engine)->counters());
}

TEST(StreamAggEngineTest, TelemetryEpochHistoryIsBoundedAndLabeled) {
  const Trace trace = UniformTrace(400, 60000, 37);
  StreamAggEngine::Options options = BaseOptions();
  options.epoch_seconds = 1.0;  // 10 epochs over the 10-second trace.
  options.telemetry_epoch_snapshots = true;
  options.telemetry_history_cap = 4;
  auto engine = StreamAggEngine::FromQueryDefs(
      trace.schema(),
      {QueryDef(*trace.schema().ParseAttributeSet("AB"))}, options);
  ASSERT_TRUE(engine.ok());
  for (const Record& r : trace.records()) {
    ASSERT_TRUE((*engine)->Process(r).ok());
  }
  ASSERT_TRUE((*engine)->Finish().ok());

  const std::vector<TelemetrySnapshot>& history =
      (*engine)->telemetry_history();
  ASSERT_FALSE(history.empty());
  EXPECT_LE(history.size(), 4u);  // Oldest snapshots dropped first.
  for (size_t i = 1; i < history.size(); ++i) {
    EXPECT_LT(history[i - 1].epoch, history[i].epoch);
    // Cumulative counters only grow along the history.
    EXPECT_LE(history[i - 1].counters.records, history[i].counters.records);
  }
}

TEST(StreamAggEngineTest, TelemetryHistoryCapHoldsOnLongRuns) {
  // Regression (ISSUE 8 satellite): history must stay at the cap no matter
  // how many epochs the run spans — memory is O(cap), not O(stream length).
  const Trace trace = UniformTrace(400, 60000, 43);
  StreamAggEngine::Options options = BaseOptions();
  options.epoch_seconds = 0.2;  // ~50 epochs over the 10-second trace.
  options.telemetry_epoch_snapshots = true;
  options.telemetry_history_cap = 3;
  auto engine = StreamAggEngine::FromQueryDefs(
      trace.schema(),
      {QueryDef(*trace.schema().ParseAttributeSet("AB"))}, options);
  ASSERT_TRUE(engine.ok());
  for (const Record& r : trace.records()) {
    ASSERT_TRUE((*engine)->Process(r).ok());
  }
  ASSERT_TRUE((*engine)->Finish().ok());

  // The run really did span far more epochs than the cap.
  EXPECT_GT((*engine)->counters().epochs_flushed, 30u);
  EXPECT_EQ((*engine)->telemetry_history().size(), 3u);
}

TEST(StreamAggEngineTest, TelemetryHistoryCapWidensToAdaptiveTrendWindow) {
  // A cap below the adaptive trend window would starve AssessTrend, so the
  // engine keeps at least trend_epochs + 1 snapshots regardless of the cap.
  const Trace trace = UniformTrace(400, 60000, 47);
  StreamAggEngine::Options options = BaseOptions();
  options.epoch_seconds = 0.2;
  options.adaptive = true;  // Forces epoch snapshots on.
  options.adaptive_options.trend_epochs = 4;
  options.telemetry_history_cap = 1;
  auto engine = StreamAggEngine::FromQueryDefs(
      trace.schema(),
      {QueryDef(*trace.schema().ParseAttributeSet("AB"))}, options);
  ASSERT_TRUE(engine.ok());
  for (const Record& r : trace.records()) {
    ASSERT_TRUE((*engine)->Process(r).ok());
  }
  ASSERT_TRUE((*engine)->Finish().ok());

  EXPECT_GT((*engine)->counters().epochs_flushed, 30u);
  EXPECT_EQ((*engine)->telemetry_history().size(), 5u);  // trend_epochs + 1.
}

TEST(StreamAggEngineTest, ShardedTelemetryMergesToEngineCounters) {
  const Trace trace = UniformTrace(600, 80000, 41);
  StreamAggEngine::Options options = BaseOptions();
  options.num_shards = 3;
  auto engine = StreamAggEngine::FromQueryDefs(
      trace.schema(),
      {QueryDef(*trace.schema().ParseAttributeSet("AB")),
       QueryDef(*trace.schema().ParseAttributeSet("CD"))},
      options);
  ASSERT_TRUE(engine.ok());
  for (const Record& r : trace.records()) {
    ASSERT_TRUE((*engine)->Process(r).ok());
  }
  ASSERT_TRUE((*engine)->Finish().ok());

  const TelemetrySnapshot snap = (*engine)->telemetry();
  EXPECT_EQ(snap.num_shards, 3);
  // Merged totals are bit-identical to the engine's accumulated counters.
  EXPECT_TRUE(snap.counters == (*engine)->counters());
  EXPECT_EQ(snap.counters.records, trace.size());
  ASSERT_EQ(snap.shards.size(), 3u);
  uint64_t routed = 0;
  for (const ShardTelemetry& s : snap.shards) routed += s.records;
  EXPECT_EQ(routed, trace.size());
}

// --- Online query churn (docs/query_frontend.md §4) ----------------------

TEST(StreamAggEngineChurnTest, AddQueryFromTextMidStream) {
  const Trace trace = UniformTrace(500, 60000, 71);
  const Schema& schema = trace.schema();
  auto engine = StreamAggEngine::FromQueryTexts(
      schema, {"select A, B, count(*) from R group by A, B, time/2"},
      BaseOptions());
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  int added = -1;
  for (size_t i = 0; i < trace.size(); ++i) {
    if (i == 30000) {
      // The text parses against the live relation name and engine epoch.
      auto id = (*engine)->AddQuery(
          "select C, D, sum(A) from R group by C, D epoch 2");
      ASSERT_TRUE(id.ok()) << id.status().ToString();
      added = *id;
      EXPECT_EQ(added, 1);
      EXPECT_TRUE((*engine)->IsLive(added));
      EXPECT_EQ((*engine)->num_query_ids(), 2);
      EXPECT_EQ((*engine)->parsed_queries().size(), 2u);
    }
    ASSERT_TRUE((*engine)->Process(trace.record(i)).ok());
  }
  ASSERT_TRUE((*engine)->Finish().ok());

  ASSERT_EQ((*engine)->churn_events().size(), 1u);
  const QueryChurnEvent& event = (*engine)->churn_events().front();
  EXPECT_TRUE(event.add);
  EXPECT_EQ(event.query_id, added);
  EXPECT_FALSE(event.aliased);
  EXPECT_GE(event.optimize_millis, 0.0);
  EXPECT_FALSE((*engine)->Epochs(added).empty());
}

TEST(StreamAggEngineChurnTest, AddQueryTextRejections) {
  const Trace trace = UniformTrace(400, 40000, 73);
  const Schema& schema = trace.schema();
  auto engine = StreamAggEngine::FromQueryTexts(
      schema,
      {"select A, count(*) from R where D < 4 group by A, time/2"},
      BaseOptions());
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  for (size_t i = 0; i < 30000; ++i) {
    ASSERT_TRUE((*engine)->Process(trace.record(i)).ok());
  }

  // Epoch disagreement names both lengths.
  auto bad = (*engine)->AddQuery(
      "select B, count(*) from R where D < 4 group by B, time/60");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().ToString().find("60"), std::string::npos);
  EXPECT_NE(bad.status().ToString().find("2"), std::string::npos);

  // A different where clause breaks phantom sharing.
  bad = (*engine)->AddQuery("select B, count(*) from R group by B, time/2");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().ToString().find("where clause"), std::string::npos);

  // A typo'd relation fails at parse time with the known relation listed.
  bad = (*engine)->AddQuery(
      "select B, count(*) from S where D < 4 group by B, time/2");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().ToString().find("R"), std::string::npos);

  // Same group-by as a live query but different metrics: rejected, not
  // aliased (the slot cannot serve both result shapes).
  bad = (*engine)->AddQuery(
      "select A, sum(B) from R where D < 4 group by A, time/2");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().ToString().find("different metrics"),
            std::string::npos);

  // Nothing above disturbed the engine.
  EXPECT_EQ((*engine)->num_query_ids(), 1);
  EXPECT_TRUE((*engine)->churn_events().empty());
  for (size_t i = 30000; i < trace.size(); ++i) {
    ASSERT_TRUE((*engine)->Process(trace.record(i)).ok());
  }
  ASSERT_TRUE((*engine)->Finish().ok());
}

TEST(StreamAggEngineChurnTest, DropQueryGuards) {
  const Trace trace = UniformTrace(400, 50000, 79);
  const Schema& schema = trace.schema();
  auto engine = StreamAggEngine::FromQueryDefs(
      schema,
      {QueryDef(*schema.ParseAttributeSet("AB")),
       QueryDef(*schema.ParseAttributeSet("CD"))},
      BaseOptions());
  ASSERT_TRUE(engine.ok());
  for (size_t i = 0; i < 30000; ++i) {
    ASSERT_TRUE((*engine)->Process(trace.record(i)).ok());
  }

  EXPECT_FALSE((*engine)->DropQuery(-1).ok());
  EXPECT_FALSE((*engine)->DropQuery(7).ok());
  ASSERT_TRUE((*engine)->DropQuery(1).ok());
  // Already dropped.
  const Status twice = (*engine)->DropQuery(1);
  ASSERT_FALSE(twice.ok());
  EXPECT_NE(twice.ToString().find("already dropped"), std::string::npos);
  // Never below one live query.
  const Status last = (*engine)->DropQuery(0);
  ASSERT_FALSE(last.ok());
  EXPECT_NE(last.ToString().find("last live query"), std::string::npos);

  for (size_t i = 30000; i < trace.size(); ++i) {
    ASSERT_TRUE((*engine)->Process(trace.record(i)).ok());
  }
  ASSERT_TRUE((*engine)->Finish().ok());
  EXPECT_TRUE((*engine)->IsLive(0));
  EXPECT_FALSE((*engine)->IsLive(1));
}

TEST(StreamAggEngineChurnTest, ChurnEventsExportedThroughTelemetry) {
  const Trace trace = UniformTrace(500, 60000, 83);
  const Schema& schema = trace.schema();
  auto engine = StreamAggEngine::FromQueryDefs(
      schema,
      {QueryDef(*schema.ParseAttributeSet("AB")),
       QueryDef(*schema.ParseAttributeSet("CD"))},
      BaseOptions());
  ASSERT_TRUE(engine.ok());
  for (size_t i = 0; i < trace.size(); ++i) {
    if (i == 30000) {
      ASSERT_TRUE(
          (*engine)->AddQuery(QueryDef(*schema.ParseAttributeSet("BC"))).ok());
    }
    if (i == 45000) {
      ASSERT_TRUE((*engine)->DropQuery(0).ok());
    }
    ASSERT_TRUE((*engine)->Process(trace.record(i)).ok());
  }
  ASSERT_TRUE((*engine)->Finish().ok());

  ASSERT_EQ((*engine)->churn_events().size(), 2u);
  const TelemetrySnapshot snap = (*engine)->telemetry();
  ASSERT_EQ(snap.query_churn.size(), 2u);
  EXPECT_TRUE(snap.query_churn[0] == (*engine)->churn_events()[0]);
  EXPECT_TRUE(snap.query_churn[1] == (*engine)->churn_events()[1]);
  EXPECT_TRUE(snap.query_churn[0].add);
  EXPECT_FALSE(snap.query_churn[1].add);

  // The section survives the JSON line round trip bit-exactly and renders
  // in the human table.
  const std::string line = snap.ToJsonLine();
  EXPECT_NE(line.find("\"query_churn\""), std::string::npos);
  EXPECT_NE(line.find("\"action\":\"add\""), std::string::npos);
  EXPECT_NE(line.find("\"action\":\"drop\""), std::string::npos);
  auto restored = TelemetrySnapshot::FromJsonLine(line);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ASSERT_EQ(restored->query_churn.size(), 2u);
  EXPECT_TRUE(restored->query_churn[0] == snap.query_churn[0]);
  EXPECT_TRUE(restored->query_churn[1] == snap.query_churn[1]);
  EXPECT_NE(snap.ToTable().find("query churn:"), std::string::npos);
}

TEST(StreamAggEngineChurnTest, ChurnReserveKeepsGraftHeadroom) {
  // With a reserve the initial plan leaves budget a later graft may spend;
  // the engine runs exactly as without one (results are checked by the
  // differential suite — here the lifecycle and the budget accounting).
  const Trace trace = UniformTrace(500, 60000, 89);
  const Schema& schema = trace.schema();
  StreamAggEngine::Options options = BaseOptions();
  options.churn_reserve_fraction = 0.25;
  auto engine = StreamAggEngine::FromQueryDefs(
      schema,
      {QueryDef(*schema.ParseAttributeSet("AB")),
       QueryDef(*schema.ParseAttributeSet("CD"))},
      options);
  ASSERT_TRUE(engine.ok());
  int added = -1;
  for (size_t i = 0; i < trace.size(); ++i) {
    if (i == 30000) {
      auto id =
          (*engine)->AddQuery(QueryDef(*schema.ParseAttributeSet("BD")));
      ASSERT_TRUE(id.ok()) << id.status().ToString();
      added = *id;
    }
    ASSERT_TRUE((*engine)->Process(trace.record(i)).ok());
  }
  ASSERT_TRUE((*engine)->Finish().ok());
  EXPECT_TRUE((*engine)->IsLive(added));
  EXPECT_FALSE((*engine)->Epochs(added).empty());
}

TEST(StreamAggEngineChurnTest, PinnedPlanWithoutCountsRejectsLiveChurn) {
  // A pinned-plan engine with no catalog counts cannot re-plan: live
  // AddQuery/DropQuery fail cleanly and leave the engine running.
  const Schema schema = *Schema::Default(4);
  auto catalog = RelationCatalog::Synthetic(
      schema, {{AttributeSet::Single(0).mask(), 100},
               {AttributeSet::Single(1).mask(), 100},
               {AttributeSet::Single(2).mask(), 100},
               {AttributeSet::Single(3).mask(), 100}});
  ASSERT_TRUE(catalog.ok());
  Optimizer optimizer;
  OptimizedPlan plan = *optimizer.Optimize(
      *catalog,
      std::vector<QueryDef>{QueryDef(*schema.ParseAttributeSet("AB")),
                            QueryDef(*schema.ParseAttributeSet("CD"))},
      20000.0);
  auto engine = StreamAggEngine::FromPinnedPlan(schema, std::move(plan), {},
                                                BaseOptions());
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  auto added = (*engine)->AddQuery(QueryDef(*schema.ParseAttributeSet("BC")));
  ASSERT_FALSE(added.ok());
  EXPECT_NE(added.status().ToString().find("statistics"), std::string::npos);
  const Status dropped = (*engine)->DropQuery(0);
  ASSERT_FALSE(dropped.ok());
  EXPECT_NE(dropped.ToString().find("statistics"), std::string::npos);
  EXPECT_EQ((*engine)->num_query_ids(), 2);
  EXPECT_TRUE((*engine)->IsLive(0));
}

// --- ValidateOptions: one test per rejected combination, each message
// naming Options::<field> and the offending value (PR 4/6 convention). ---

TEST(EngineValidation, RejectsNonPositiveNumShards) {
  StreamAggEngine::Options options = BaseOptions();
  options.num_shards = 0;
  auto engine = StreamAggEngine::FromQueryDefs(
      *Schema::Default(2), {QueryDef(AttributeSet::Single(0))}, options);
  ASSERT_FALSE(engine.ok());
  EXPECT_NE(engine.status().ToString().find(
                "Options::num_shards must be >= 1 (got 0)"),
            std::string::npos)
      << engine.status().ToString();
}

TEST(EngineValidation, RejectsNonPositiveNumProducers) {
  StreamAggEngine::Options options = BaseOptions();
  options.num_producers = -2;
  auto engine = StreamAggEngine::FromQueryDefs(
      *Schema::Default(2), {QueryDef(AttributeSet::Single(0))}, options);
  ASSERT_FALSE(engine.ok());
  EXPECT_NE(engine.status().ToString().find(
                "Options::num_producers must be >= 1 (got -2)"),
            std::string::npos)
      << engine.status().ToString();
}

TEST(EngineValidation, RejectsTinyShardQueue) {
  StreamAggEngine::Options options = BaseOptions();
  options.shard_queue_capacity = 1;
  auto engine = StreamAggEngine::FromQueryDefs(
      *Schema::Default(2), {QueryDef(AttributeSet::Single(0))}, options);
  ASSERT_FALSE(engine.ok());
  EXPECT_NE(engine.status().ToString().find(
                "Options::shard_queue_capacity must be >= 2 (got 1)"),
            std::string::npos)
      << engine.status().ToString();
}

TEST(EngineValidation, RejectsOverloadAtTelemetryOff) {
  StreamAggEngine::Options options = BaseOptions();
  options.overload.enabled = true;
  options.telemetry_level = TelemetryLevel::kOff;
  auto engine = StreamAggEngine::FromQueryDefs(
      *Schema::Default(2), {QueryDef(AttributeSet::Single(0))}, options);
  ASSERT_FALSE(engine.ok());
  EXPECT_NE(engine.status().ToString().find(
                "Options::overload.enabled requires Options::telemetry_level "
                "above kOff (got kOff)"),
            std::string::npos)
      << engine.status().ToString();
}

TEST(EngineValidation, RejectsNegativeChurnReserve) {
  StreamAggEngine::Options options = BaseOptions();
  options.churn_reserve_fraction = -0.1;
  auto engine = StreamAggEngine::FromQueryDefs(
      *Schema::Default(2), {QueryDef(AttributeSet::Single(0))}, options);
  ASSERT_FALSE(engine.ok());
  EXPECT_NE(engine.status().ToString().find(
                "Options::churn_reserve_fraction must be in [0, 0.9] "
                "(got -0.1)"),
            std::string::npos)
      << engine.status().ToString();
}

TEST(EngineValidation, RejectsOverlargeChurnReserve) {
  // Above 0.9 the initial plan would starve; churn composes with adaptive
  // and overload, so the range check is the only churn rejection.
  StreamAggEngine::Options options = BaseOptions();
  options.churn_reserve_fraction = 0.95;
  options.adaptive = true;
  options.overload.enabled = true;
  auto engine = StreamAggEngine::FromQueryDefs(
      *Schema::Default(2), {QueryDef(AttributeSet::Single(0))}, options);
  ASSERT_FALSE(engine.ok());
  EXPECT_NE(engine.status().ToString().find(
                "Options::churn_reserve_fraction must be in [0, 0.9] "
                "(got 0.95)"),
            std::string::npos)
      << engine.status().ToString();
}

TEST(EngineValidation, RejectsAdaptivePinnedPlanWithoutCounts) {
  const Schema schema = *Schema::Default(4);
  auto catalog = RelationCatalog::Synthetic(
      schema, {{AttributeSet::Single(0).mask(), 100},
               {AttributeSet::Single(1).mask(), 100},
               {AttributeSet::Single(2).mask(), 100},
               {AttributeSet::Single(3).mask(), 100}});
  ASSERT_TRUE(catalog.ok());
  Optimizer optimizer;
  OptimizedPlan plan = *optimizer.Optimize(
      *catalog,
      std::vector<QueryDef>{QueryDef(*schema.ParseAttributeSet("AB"))},
      20000.0);
  StreamAggEngine::Options options = BaseOptions();
  options.adaptive = true;
  auto engine =
      StreamAggEngine::FromPinnedPlan(schema, std::move(plan), {}, options);
  ASSERT_FALSE(engine.ok());
  EXPECT_NE(engine.status().ToString().find(
                "Options::adaptive requires catalog counts for pinned-plan "
                "engines (got adaptive=true with 0 catalog counts)"),
            std::string::npos)
      << engine.status().ToString();
}

}  // namespace
}  // namespace streamagg
