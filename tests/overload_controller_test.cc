// Overload controller unit coverage (dsms/overload_controller.h,
// docs/overload.md): Eq-7 pricing credited to feeding-tree roots, greedy
// shed allocation by cycles per unit of accuracy, the sustained-trend
// widening/relief state machine (a single-epoch spike must never trigger),
// exact error-diffusion shed counts at the runtime, LPT slot rebalancing,
// and the field+value convention of every validation message.

#include "dsms/overload_controller.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/configuration.h"
#include "core/cost_model.h"
#include "core/engine.h"
#include "dsms/configuration_runtime.h"
#include "obs/telemetry.h"
#include "stream/zipf_generator.h"

namespace streamagg {
namespace {

Trace ZipfTrace(uint64_t seed) {
  const Schema schema = *Schema::Default(4);
  auto universe = GroupUniverse::Uniform(schema, 800, {60, 60, 60, 60}, seed);
  auto gen =
      std::move(ZipfGenerator::Make(std::move(*universe), 1.0, seed + 1))
          .value();
  return Trace::Generate(*gen, 60000, 12.0);
}

/// A one-producer snapshot with cumulative record/blocked-push tallies —
/// the two numbers EpochPressure differentiates.
TelemetrySnapshot Snap(uint64_t records, uint64_t blocked) {
  TelemetrySnapshot s;
  s.counters.records = records;
  ProducerTelemetry p;
  p.records = records;
  p.blocked_pushes = blocked;
  s.producers.push_back(p);
  return s;
}

/// The two-tree plan the pricing tests share: queries A, B, C with phantom
/// AB — tree AB(A B) holds two of the three queries, tree C the third.
OptimizedPlan TwoTreePlan(const Schema& schema) {
  auto config = Configuration::Make(
      schema,
      {*schema.ParseAttributeSet("A"), *schema.ParseAttributeSet("B"),
       *schema.ParseAttributeSet("C")},
      {*schema.ParseAttributeSet("AB")});
  EXPECT_TRUE(config.ok()) << config.status().ToString();
  const size_t num_nodes = static_cast<size_t>(config->num_nodes());
  OptimizedPlan plan{std::move(*config), std::vector<double>(num_nodes, 200.0),
                     0.0, 0.0, true, 0.0, {}};
  return plan;
}

const OverloadController::RelationPrice& PriceFor(
    const OverloadController& controller, const std::string& relation) {
  for (const auto& price : controller.prices()) {
    if (price.relation == relation) return price;
  }
  ADD_FAILURE() << "no price for relation " << relation;
  static OverloadController::RelationPrice missing;
  return missing;
}

TEST(OverloadPricing, PerRecordCostByRootSumsToTotal) {
  // The pricing foundation: crediting every node's Eq-7 term to its
  // feeding-tree root partitions the per-record cost exactly — roots sum to
  // PerRecordCost and non-roots carry nothing.
  const Schema schema = *Schema::Default(4);
  auto catalog = RelationCatalog::Synthetic(
      schema, {
                  {schema.ParseAttributeSet("A")->mask(), 100},
                  {schema.ParseAttributeSet("B")->mask(), 100},
                  {schema.ParseAttributeSet("C")->mask(), 100},
                  {schema.ParseAttributeSet("D")->mask(), 100},
                  {schema.ParseAttributeSet("AB")->mask(), 400},
              });
  ASSERT_TRUE(catalog.ok());
  LinearCollisionModel linear(/*alpha=*/0.0, /*mu=*/0.354);
  const CostModel model(&*catalog, &linear, CostParams{1.0, 50.0});
  const OptimizedPlan plan = TwoTreePlan(schema);

  const std::vector<double> by_root =
      model.PerRecordCostByRoot(plan.config, plan.buckets);
  ASSERT_EQ(by_root.size(), static_cast<size_t>(plan.config.num_nodes()));
  double sum = 0.0;
  for (int i = 0; i < plan.config.num_nodes(); ++i) {
    if (plan.config.node(i).parent >= 0) {
      EXPECT_EQ(by_root[static_cast<size_t>(i)], 0.0) << "node " << i;
    }
    sum += by_root[static_cast<size_t>(i)];
  }
  EXPECT_NEAR(sum, model.PerRecordCost(plan.config, plan.buckets), 1e-12);

  // The controller's prices are exactly those root credits, so their total
  // is the plan's whole per-record cost.
  OverloadController controller({});
  controller.PriceRelations(&model, plan, schema);
  ASSERT_EQ(controller.prices().size(), 2u);
  double priced = 0.0;
  for (const auto& price : controller.prices()) {
    priced += price.cycles_per_record;
  }
  EXPECT_NEAR(priced, model.PerRecordCost(plan.config, plan.buckets), 1e-12);
}

TEST(OverloadPricing, AccuracyWeightsAreQueryShares) {
  const Schema schema = *Schema::Default(4);
  const OptimizedPlan plan = TwoTreePlan(schema);
  OverloadController controller({});
  controller.PriceRelations(/*cost_model=*/nullptr, plan, schema);

  // Uniform pricing without a cost model: the floor/trend machinery still
  // works, the preference degrades to accuracy weight alone.
  ASSERT_EQ(controller.prices().size(), 2u);
  EXPECT_DOUBLE_EQ(PriceFor(controller, "AB").cycles_per_record, 1.0);
  EXPECT_DOUBLE_EQ(PriceFor(controller, "C").cycles_per_record, 1.0);
  // Tree AB(A B) holds queries A and B; tree C holds query C.
  EXPECT_NEAR(PriceFor(controller, "AB").accuracy_weight, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(PriceFor(controller, "C").accuracy_weight, 1.0 / 3.0, 1e-12);
}

TEST(OverloadPricing, MinShedFractionFloorsEveryRelation) {
  const Schema schema = *Schema::Default(4);
  OverloadController::Options options;
  options.enabled = true;
  options.min_shed_fraction = 0.25;
  OverloadController controller(options);
  controller.PriceRelations(nullptr, TwoTreePlan(schema), schema);

  EXPECT_DOUBLE_EQ(controller.target_fraction(), 0.25);
  ASSERT_EQ(controller.shed_plan().numerators.size(), 2u);
  for (uint32_t numerator : controller.shed_plan().numerators) {
    EXPECT_EQ(numerator, 256u);  // llround(0.25 * 1024).
  }
  EXPECT_TRUE(controller.shed_plan().active());
}

TEST(OverloadTrend, SustainedPressureWidensGreedily) {
  const Schema schema = *Schema::Default(4);
  OverloadController::Options options;
  options.enabled = true;
  options.queue_blocked_fraction = 0.01;
  options.shed_step = 0.5;
  options.trend_epochs = 2;
  OverloadController controller(options);
  controller.PriceRelations(nullptr, TwoTreePlan(schema), schema);
  EXPECT_FALSE(controller.shed_plan().active());

  // Two consecutive epochs at 5x the blocked-fraction watermark.
  std::vector<TelemetrySnapshot> history;
  history.push_back(Snap(10000, 0));
  history.push_back(Snap(20000, 500));
  history.push_back(Snap(30000, 1000));
  EXPECT_TRUE(controller.UpdateShedPlan(history));
  EXPECT_DOUBLE_EQ(controller.target_fraction(), 0.5);

  // Greedy allocation at uniform prices prefers the tree with the smaller
  // accuracy weight: C absorbs up to the 0.9 cap, AB sheds the remainder.
  // needed = 0.5 * 2 cycles; C takes 0.9, AB the remaining 0.1.
  const auto& numerators = controller.shed_plan().numerators;
  ASSERT_EQ(numerators.size(), 2u);
  const size_t c_index =
      static_cast<size_t>(PriceFor(controller, "C").raw_index);
  const size_t ab_index =
      static_cast<size_t>(PriceFor(controller, "AB").raw_index);
  EXPECT_EQ(numerators[c_index], 922u);   // llround(0.9 * 1024).
  EXPECT_EQ(numerators[ab_index], 102u);  // llround(0.1 * 1024).

  // The exported estimates are the plan's dot products with the prices.
  const double f_c = 922.0 / 1024.0;
  const double f_ab = 102.0 / 1024.0;
  EXPECT_NEAR(controller.accuracy_loss(), f_c / 3.0 + f_ab * 2.0 / 3.0,
              1e-12);
  EXPECT_NEAR(controller.cycles_saved_per_record(), f_c + f_ab, 1e-12);
}

TEST(OverloadTrend, SingleEpochSpikeNeverWidens) {
  // The acceptance rule inherited from the adaptive controller: one epoch
  // over the watermark — however far over — must not shed anything, because
  // its trend window always contains a calm neighbor.
  const Schema schema = *Schema::Default(4);
  OverloadController::Options options;
  options.enabled = true;
  options.queue_blocked_fraction = 0.01;
  options.trend_epochs = 2;
  OverloadController controller(options);
  controller.PriceRelations(nullptr, TwoTreePlan(schema), schema);

  std::vector<TelemetrySnapshot> history;
  history.push_back(Snap(10000, 0));
  EXPECT_FALSE(controller.UpdateShedPlan(history));
  history.push_back(Snap(20000, 500));  // The spike: 5x the watermark.
  EXPECT_FALSE(controller.UpdateShedPlan(history));
  history.push_back(Snap(30000, 500));  // Calm again (no new blocks).
  EXPECT_FALSE(controller.UpdateShedPlan(history));
  EXPECT_DOUBLE_EQ(controller.target_fraction(), 0.0);
  EXPECT_FALSE(controller.shed_plan().active());
}

TEST(OverloadTrend, ReliefNarrowsBackToFloor) {
  const Schema schema = *Schema::Default(4);
  OverloadController::Options options;
  options.enabled = true;
  options.queue_blocked_fraction = 0.01;
  options.shed_step = 0.5;
  options.trend_epochs = 2;
  OverloadController controller(options);
  controller.PriceRelations(nullptr, TwoTreePlan(schema), schema);

  std::vector<TelemetrySnapshot> history;
  history.push_back(Snap(10000, 0));
  history.push_back(Snap(20000, 500));
  history.push_back(Snap(30000, 1000));
  ASSERT_TRUE(controller.UpdateShedPlan(history));
  ASSERT_DOUBLE_EQ(controller.target_fraction(), 0.5);

  // Two epochs fully under the watermark: the controller steps back down to
  // the floor and the plan empties.
  history.push_back(Snap(40000, 1000));
  history.push_back(Snap(50000, 1000));
  EXPECT_TRUE(controller.UpdateShedPlan(history));
  EXPECT_DOUBLE_EQ(controller.target_fraction(), 0.0);
  EXPECT_FALSE(controller.shed_plan().active());
}

TEST(OverloadTrend, EpochGapWatermarkReadsHistogramDeltas) {
  OverloadController::Options options;
  options.enabled = true;
  options.queue_blocked_fraction = 0.0;  // Disable the queue signal.
  options.epoch_gap_watermark_ns = 1000;
  OverloadController controller(options);

  TelemetrySnapshot cur;
  for (int i = 0; i < 100; ++i) cur.epoch_gap_ns.Record(4000);
  // Fresh growth from a zero baseline: p99 of the delta is 4000ns, 4x over.
  EXPECT_DOUBLE_EQ(controller.EpochPressure(nullptr, cur), 4.0);
  // Against itself the delta is empty — cumulative histograms never read as
  // sustained pressure.
  EXPECT_DOUBLE_EQ(controller.EpochPressure(&cur, cur), 0.0);
}

TEST(OverloadShedding, RuntimeShedCountsAreExact) {
  // The runtime's error-diffusion accumulator drops exactly
  // floor(records * numerator / 1024) probes per raw relation — no RNG, no
  // rounding drift — and the bookkeeping closes: probes + shed == records
  // at every raw table, and counters.shed_probes is their sum.
  const Trace trace = ZipfTrace(0x42);
  const Schema& schema = trace.schema();
  auto config = Configuration::Parse(schema, "AB(A B) CD");
  ASSERT_TRUE(config.ok());
  auto specs = config->ToRuntimeSpecs(
      std::vector<double>(config->num_nodes(), 128.0));
  ASSERT_TRUE(specs.ok());
  auto runtime = ConfigurationRuntime::Make(schema, *specs, 3.0);
  ASSERT_TRUE(runtime.ok()) << runtime.status().ToString();
  ASSERT_EQ((*runtime)->num_raw_relations(), 2);

  ShedPlan plan;
  plan.numerators = {256, 512};
  ASSERT_TRUE((*runtime)->SetShedPlan(plan).ok());
  (*runtime)->ProcessTrace(trace);

  const uint64_t n = (*runtime)->counters().records;
  EXPECT_EQ(n, trace.size());
  uint64_t total_shed = 0;
  for (int r = 0; r < 2; ++r) {
    const uint64_t shed = (*runtime)->shed_count(r);
    EXPECT_EQ(shed, n * plan.numerators[static_cast<size_t>(r)] /
                        ShedPlan::kDenominator)
        << "raw relation " << r;
    const int rel = (*runtime)->raw_relation(r);
    EXPECT_EQ((*runtime)->table(rel).probes() + shed, n)
        << "raw relation " << r;
    total_shed += shed;
  }
  EXPECT_EQ((*runtime)->counters().shed_probes, total_shed);
}

TEST(OverloadRebalance, SustainedImbalanceTriggersLptReassignment) {
  OverloadController::Options options;
  options.enabled = true;
  options.trend_epochs = 2;
  options.imbalance_threshold = 1.5;
  OverloadController controller(options);

  const std::vector<int> slot_shards = {0, 1, 0, 1};
  const std::vector<TelemetrySnapshot> history;

  // Epoch 1: shard 0 carries 850 of 1000 records (ratio 1.7) — over the
  // threshold, but one epoch is not a trend.
  auto layout = controller.DecideRebalance(history, {800, 100, 50, 50},
                                           slot_shards, /*num_shards=*/2,
                                           /*num_producers=*/1);
  EXPECT_FALSE(layout.changed);
  EXPECT_EQ(controller.rebalances(), 0);

  // Epoch 2: same skew again — now it is sustained. LPT assigns the
  // heaviest slot (0) to one shard and everything else to the other.
  layout = controller.DecideRebalance(history, {1600, 200, 100, 100},
                                      slot_shards, 2, 1);
  ASSERT_TRUE(layout.changed);
  EXPECT_EQ(layout.slot_shards, (std::vector<int>{0, 1, 1, 1}));
  EXPECT_TRUE(layout.stripe_weights.empty());  // One producer: even split.
  EXPECT_EQ(controller.rebalances(), 1);
}

TEST(OverloadRebalance, StripeWeightsShrinkBlockedProducers) {
  OverloadController::Options options;
  options.enabled = true;
  options.trend_epochs = 1;
  options.imbalance_threshold = 1.5;
  OverloadController controller(options);

  // Producer 0 blocked on half its pushes last epoch; producer 1 never did.
  std::vector<TelemetrySnapshot> history;
  TelemetrySnapshot before;
  before.producers = {ProducerTelemetry{1000, 0, 0, -1, -1},
                      ProducerTelemetry{1000, 0, 0, -1, -1}};
  TelemetrySnapshot after;
  after.producers = {ProducerTelemetry{2000, 0, 500, -1, -1},
                     ProducerTelemetry{2000, 0, 0, -1, -1}};
  history.push_back(before);
  history.push_back(after);

  auto layout = controller.DecideRebalance(history, {900, 50, 25, 25},
                                           {0, 1, 0, 1}, /*num_shards=*/2,
                                           /*num_producers=*/2);
  ASSERT_TRUE(layout.changed);
  ASSERT_EQ(layout.stripe_weights.size(), 2u);
  EXPECT_NEAR(layout.stripe_weights[0], 1.0 / 1.5, 1e-12);
  EXPECT_DOUBLE_EQ(layout.stripe_weights[1], 1.0);
}

TEST(OverloadRebalance, SingleShardNeverRebalances) {
  OverloadController::Options options;
  options.enabled = true;
  options.trend_epochs = 1;
  OverloadController controller(options);
  const auto layout = controller.DecideRebalance({}, {1000, 0}, {0, 0},
                                                 /*num_shards=*/1,
                                                 /*num_producers=*/1);
  EXPECT_FALSE(layout.changed);
  EXPECT_EQ(controller.rebalances(), 0);
}

TEST(OverloadValidation, MessagesNameFieldAndValue) {
  const auto expect_rejected = [](const OverloadController::Options& options,
                                  const std::string& field,
                                  const std::string& value) {
    const Status status = OverloadController::ValidateOptions(options);
    ASSERT_FALSE(status.ok()) << field;
    const std::string message = status.ToString();
    EXPECT_NE(message.find("Options::overload." + field), std::string::npos)
        << message;
    EXPECT_NE(message.find(value), std::string::npos) << message;
  };

  OverloadController::Options options;
  options.queue_blocked_fraction = -0.5;
  expect_rejected(options, "queue_blocked_fraction", "(got -0.500000)");

  options = {};
  options.min_shed_fraction = 1.5;
  expect_rejected(options, "min_shed_fraction", "(got 1.500000)");

  options = {};
  options.min_shed_fraction = 0.5;
  options.max_shed_fraction = 0.25;
  expect_rejected(options, "max_shed_fraction", "(got 0.250000)");

  options = {};
  options.shed_step = 0.0;
  expect_rejected(options, "shed_step", "(got 0.000000)");

  options = {};
  options.trend_epochs = 0;
  expect_rejected(options, "trend_epochs", "(got 0)");

  options = {};
  options.widening_slack = -1.0;
  expect_rejected(options, "widening_slack", "(got -1.000000)");

  options = {};
  options.imbalance_threshold = 0.5;
  expect_rejected(options, "imbalance_threshold", "(got 0.500000)");

  options = {};
  options.rebalance_slots_per_shard = 0;
  expect_rejected(options, "rebalance_slots_per_shard", "(got 0)");

  EXPECT_TRUE(OverloadController::ValidateOptions({}).ok());
}

TEST(OverloadValidation, EngineRejectsControllerAtTelemetryOff) {
  // The controller reads the blocked-push counters; kOff does not maintain
  // them, so the combination is a configuration error, not a silent no-op.
  const Schema schema = *Schema::Default(4);
  const std::vector<QueryDef> queries = {
      QueryDef(*schema.ParseAttributeSet("AB"))};

  StreamAggEngine::Options options;
  options.overload.enabled = true;
  options.telemetry_level = TelemetryLevel::kOff;
  auto engine = StreamAggEngine::FromQueryDefs(schema, queries, options);
  ASSERT_FALSE(engine.ok());
  const std::string message = engine.status().ToString();
  EXPECT_NE(message.find("Options::overload.enabled"), std::string::npos)
      << message;
  EXPECT_NE(message.find("kOff"), std::string::npos) << message;

  // The controller's own knobs are validated through the engine too, even
  // with the controller disabled — a bad config never lies dormant.
  options = {};
  options.overload.trend_epochs = 0;
  engine = StreamAggEngine::FromQueryDefs(schema, queries, options);
  ASSERT_FALSE(engine.ok());
  EXPECT_NE(engine.status().ToString().find("Options::overload.trend_epochs"),
            std::string::npos)
      << engine.status().ToString();
}

}  // namespace
}  // namespace streamagg
