// Property tests over randomly generated configurations: the space
// allocation schemes must uphold their structural invariants (budget
// respected, at least one bucket each, ES no worse than any heuristic) on
// arbitrary feeding trees, not just the hand-picked paper shapes.

#include <algorithm>
#include <map>

#include <gtest/gtest.h>

#include "core/feeding_graph.h"
#include "core/space_allocation.h"
#include "util/random.h"

namespace streamagg {
namespace {

struct RandomSetup {
  Schema schema;
  RelationCatalog catalog;
  std::vector<AttributeSet> queries;
  Configuration config;
};

// Draws a random query set over 4-5 attributes, random group counts, and a
// random subset of the candidate phantoms.
RandomSetup MakeRandomSetup(uint64_t seed) {
  Random rng(seed);
  const int d = 4 + static_cast<int>(rng.Uniform(2));
  Schema schema = *Schema::Default(d);
  // Random group counts: singletons in [50, 1000], supersets grow.
  std::map<uint32_t, uint64_t> counts;
  for (uint32_t mask = 1; mask < (1u << d); ++mask) {
    const AttributeSet set(mask);
    counts[mask] = 50 + rng.Uniform(950) * set.Count();
  }
  // Make counts monotone in set inclusion (required of real data).
  for (uint32_t mask = 1; mask < (1u << d); ++mask) {
    for (int bit = 0; bit < d; ++bit) {
      if ((mask >> bit) & 1u) {
        const uint32_t subset = mask & ~(1u << bit);
        if (subset != 0) {
          counts[mask] = std::max(counts[mask], counts[subset]);
        }
      }
    }
  }
  RelationCatalog catalog =
      *RelationCatalog::Synthetic(schema, counts, 1.0 + rng.Uniform(20));

  // 2-4 random distinct queries.
  std::vector<AttributeSet> queries;
  const int nq = 2 + static_cast<int>(rng.Uniform(3));
  while (static_cast<int>(queries.size()) < nq) {
    const AttributeSet q(1u + static_cast<uint32_t>(
                                  rng.Uniform((1u << d) - 1)));
    if (std::find(queries.begin(), queries.end(), q) == queries.end()) {
      queries.push_back(q);
    }
  }
  FeedingGraph graph = *FeedingGraph::Build(schema, queries);
  std::vector<AttributeSet> phantoms;
  for (AttributeSet p : graph.phantoms()) {
    if (rng.Bernoulli(0.4)) phantoms.push_back(p);
  }
  Configuration config = *Configuration::Make(schema, queries, phantoms);
  return RandomSetup{std::move(schema), std::move(catalog),
                     std::move(queries), std::move(config)};
}

class AllocationPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AllocationPropertyTest, InvariantsHoldOnRandomConfigurations) {
  const RandomSetup setup = MakeRandomSetup(GetParam());
  PreciseCollisionModel precise;
  CostModel cost_model(&setup.catalog, &precise, CostParams{1.0, 50.0});
  SpaceAllocator allocator(&cost_model);
  const double memory = 5000.0 + 7000.0 * (GetParam() % 7);

  double es_cost = 0.0;
  {
    auto buckets =
        allocator.Allocate(setup.config, memory, AllocationScheme::kES);
    ASSERT_TRUE(buckets.ok()) << buckets.status().ToString();
    es_cost = cost_model.PerRecordCost(setup.config, *buckets);
  }
  for (AllocationScheme scheme :
       {AllocationScheme::kSL, AllocationScheme::kSR, AllocationScheme::kPL,
        AllocationScheme::kPR}) {
    auto buckets = allocator.Allocate(setup.config, memory, scheme);
    ASSERT_TRUE(buckets.ok())
        << AllocationSchemeName(scheme) << ": " << buckets.status().ToString();
    // Every table at least one bucket; budget respected (2% slack for the
    // min-bucket fixups).
    double words = 0.0;
    for (int i = 0; i < setup.config.num_nodes(); ++i) {
      EXPECT_GE((*buckets)[i], 1.0);
      words += (*buckets)[i] * (setup.config.node(i).attrs.Count() + 1);
    }
    EXPECT_LE(words, memory * 1.02) << AllocationSchemeName(scheme);
    // ES is a search over the same space: no heuristic may beat it by more
    // than the grid resolution.
    const double cost = cost_model.PerRecordCost(setup.config, *buckets);
    EXPECT_GE(cost, es_cost * 0.98)
        << AllocationSchemeName(scheme) << " beat ES on "
        << setup.config.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(RandomConfigurations, AllocationPropertyTest,
                         ::testing::Range<uint64_t>(1, 25));

class CollisionRateMonotonicityTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CollisionRateMonotonicityTest, CostDecreasesWithMemory) {
  // More LFTA memory can only reduce the modeled per-record cost under any
  // fixed scheme (allocations scale up, collision rates drop).
  const RandomSetup setup = MakeRandomSetup(GetParam() + 1000);
  PreciseCollisionModel precise;
  CostModel cost_model(&setup.catalog, &precise, CostParams{1.0, 50.0});
  SpaceAllocator allocator(&cost_model);
  double previous = 1e100;
  for (double memory = 10000.0; memory <= 90000.0; memory += 20000.0) {
    auto cost =
        allocator.AllocateAndCost(setup.config, memory, AllocationScheme::kSL);
    ASSERT_TRUE(cost.ok());
    EXPECT_LE(*cost, previous * 1.001) << "memory " << memory;
    previous = *cost;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomConfigurations, CollisionRateMonotonicityTest,
                         ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace streamagg
