#include <cmath>

#include <gtest/gtest.h>

#include "core/cost_model.h"
#include "core/optimizer.h"
#include "dsms/configuration_runtime.h"
#include "stream/flow_generator.h"
#include "stream/trace_stats.h"
#include "stream/uniform_generator.h"

namespace streamagg {
namespace {

// Integration checks of the paper's central claim: the analytic cost and
// collision models predict what the running system actually does (Sections
// 4.2 and 6.3.2).

// A uniform generator over a universe with wide per-attribute domains, so
// every projection has enough groups for the expectation-based model to have
// low realization variance (tiny projections make single runs swing wildly:
// the realized rate is 1 - occupied/g).
std::unique_ptr<UniformGenerator> WideUniform(uint64_t num_groups,
                                              uint64_t seed) {
  auto universe = GroupUniverse::Uniform(
      *Schema::Default(4), num_groups,
      {static_cast<uint32_t>(num_groups / 3),
       static_cast<uint32_t>(num_groups / 3),
       static_cast<uint32_t>(num_groups / 3),
       static_cast<uint32_t>(num_groups / 3)},
      seed);
  EXPECT_TRUE(universe.ok());
  return std::make_unique<UniformGenerator>(std::move(*universe), seed + 1);
}

struct RunOutcome {
  double measured_per_record_cost = 0.0;
  double estimated_per_record_cost = 0.0;
  std::vector<double> measured_rates;
  std::vector<double> estimated_rates;
};

RunOutcome RunAndCompare(const Trace& trace, const Configuration& config,
                         const std::vector<double>& buckets,
                         const CostModel& cost_model) {
  RunOutcome outcome;
  outcome.estimated_per_record_cost = cost_model.PerRecordCost(config, buckets);
  outcome.estimated_rates = cost_model.CollisionRates(config, buckets);

  auto specs = config.ToRuntimeSpecs(buckets);
  EXPECT_TRUE(specs.ok());
  // No epochs: the intra-epoch cost model is what we are validating.
  auto runtime = ConfigurationRuntime::Make(trace.schema(), *specs, 0.0);
  EXPECT_TRUE(runtime.ok());
  (*runtime)->ProcessTrace(trace);
  const RuntimeCounters& counters = (*runtime)->counters();
  outcome.measured_per_record_cost =
      counters.IntraCost(cost_model.params().c1, cost_model.params().c2) /
      static_cast<double>(trace.size());
  for (int i = 0; i < config.num_nodes(); ++i) {
    outcome.measured_rates.push_back((*runtime)->table(i).CollisionRate());
  }
  return outcome;
}

TEST(EstimationAccuracyTest, FlatConfigurationCostMatchesRuntime) {
  auto gen = WideUniform(2000, 51);
  const Trace trace = Trace::Generate(*gen, 200000, 10.0);
  TraceStats stats(&trace);
  const RelationCatalog catalog =
      RelationCatalog::FromTrace(&stats, /*clustered=*/false);
  PreciseCollisionModel precise;
  CostModel cost_model(&catalog, &precise, CostParams{1.0, 50.0});

  auto config = Configuration::Parse(trace.schema(), "A B C D");
  ASSERT_TRUE(config.ok());
  const std::vector<double> buckets = {400, 700, 600, 500};
  const RunOutcome outcome = RunAndCompare(trace, *config, buckets, cost_model);
  EXPECT_NEAR(outcome.measured_per_record_cost,
              outcome.estimated_per_record_cost,
              0.15 * outcome.estimated_per_record_cost);
}

TEST(EstimationAccuracyTest, PhantomConfigurationCostMatchesRuntime) {
  auto gen = WideUniform(2500, 53);
  const Trace trace = Trace::Generate(*gen, 300000, 10.0);
  TraceStats stats(&trace);
  const RelationCatalog catalog =
      RelationCatalog::FromTrace(&stats, /*clustered=*/false);
  PreciseCollisionModel precise;
  CostModel cost_model(&catalog, &precise, CostParams{1.0, 50.0});

  auto config =
      Configuration::Parse(trace.schema(), "ABCD(AB BCD(BC BD CD))");
  ASSERT_TRUE(config.ok());
  const std::vector<double> buckets = {3000, 900, 1500, 700, 700, 700};
  const RunOutcome outcome = RunAndCompare(trace, *config, buckets, cost_model);
  // The model overestimates deep configurations: eviction streams feeding
  // lower tables are themselves clustered (a parent group always projects
  // to the same child group), which the uniform-arrival assumption misses.
  // The paper reports the same effect (Section 6.3.2). Direction and
  // magnitude must still be close.
  EXPECT_NEAR(outcome.measured_per_record_cost,
              outcome.estimated_per_record_cost,
              0.35 * outcome.estimated_per_record_cost);
}

TEST(EstimationAccuracyTest, PerTableCollisionRatesMatchModel) {
  auto gen = WideUniform(2500, 57);
  const Trace trace = Trace::Generate(*gen, 300000, 10.0);
  TraceStats stats(&trace);
  const RelationCatalog catalog =
      RelationCatalog::FromTrace(&stats, /*clustered=*/false);
  PreciseCollisionModel precise;
  CostModel cost_model(&catalog, &precise, CostParams{1.0, 50.0});

  auto config = Configuration::Parse(trace.schema(), "ABC(A B C) D");
  ASSERT_TRUE(config.ok());
  const std::vector<double> buckets = {2000, 300, 300, 300, 400};
  const RunOutcome outcome = RunAndCompare(trace, *config, buckets, cost_model);
  for (size_t i = 0; i < outcome.estimated_rates.size(); ++i) {
    // Raw-table rates are tight; fed tables see fewer, phantom-filtered
    // probes, so allow wider slack plus realization variance.
    EXPECT_NEAR(outcome.measured_rates[i], outcome.estimated_rates[i],
                0.25 * outcome.estimated_rates[i] + 0.03)
        << "node " << i;
  }
}

TEST(EstimationAccuracyTest, ClusteredCostIsOverestimatedAtMostMildly) {
  // On clustered (netflow-like) data the model divides rates by the flow
  // length; prediction quality is looser but must stay in the right decade.
  auto gen = FlowGenerator::MakePaperTrace({});
  ASSERT_TRUE(gen.ok());
  const Trace trace = Trace::Generate(**gen, 300000, 62.0);
  TraceStats stats(&trace);
  RelationCatalog catalog = RelationCatalog::FromTrace(&stats);
  PreciseCollisionModel precise;
  CostModel cost_model(&catalog, &precise, CostParams{1.0, 50.0});

  auto config = Configuration::Parse(trace.schema(), "ABCD(AB BC BD CD)");
  ASSERT_TRUE(config.ok());
  // The clustered model (Equation 15) assumes a flow's packets traverse a
  // bucket without interference, which holds when tables are much larger
  // than the number of concurrently active flows (1024 here). Large tables:
  // prediction lands in the right range.
  const std::vector<double> large = {8000, 4000, 4000, 4000, 4000};
  const RunOutcome roomy = RunAndCompare(trace, *config, large, cost_model);
  const double roomy_ratio =
      roomy.measured_per_record_cost / roomy.estimated_per_record_cost;
  EXPECT_GT(roomy_ratio, 0.3);
  EXPECT_LT(roomy_ratio, 3.0);

  // Tables smaller than the concurrency lose the clustering benefit (two
  // live flows sharing a bucket ping-pong it), so the model underestimates
  // there — the measured cost must come out higher, never lower.
  const std::vector<double> cramped = {3000, 800, 800, 800, 800};
  const RunOutcome tight = RunAndCompare(trace, *config, cramped, cost_model);
  EXPECT_GT(tight.measured_per_record_cost,
            tight.estimated_per_record_cost);
}

TEST(EstimationAccuracyTest, ModelRanksConfigurationsLikeReality) {
  // What the optimizer really needs: if the model says configuration X is
  // much cheaper than Y, the measured costs must agree on the direction.
  auto gen = WideUniform(2500, 61);
  const Trace trace = Trace::Generate(*gen, 200000, 10.0);
  TraceStats stats(&trace);
  const RelationCatalog catalog =
      RelationCatalog::FromTrace(&stats, /*clustered=*/false);
  PreciseCollisionModel precise;
  CostModel cost_model(&catalog, &precise, CostParams{1.0, 50.0});
  SpaceAllocator allocator(&cost_model);

  const double memory = 40000.0;
  std::vector<std::pair<double, double>> est_meas;
  for (const char* text :
       {"A B C D", "ABCD(A B C D)", "AB(A B) CD(C D)"}) {
    auto config = Configuration::Parse(trace.schema(), text);
    ASSERT_TRUE(config.ok());
    auto buckets = allocator.Allocate(*config, memory, AllocationScheme::kSL);
    ASSERT_TRUE(buckets.ok());
    const RunOutcome outcome =
        RunAndCompare(trace, *config, *buckets, cost_model);
    est_meas.emplace_back(outcome.estimated_per_record_cost,
                          outcome.measured_per_record_cost);
  }
  for (size_t i = 0; i < est_meas.size(); ++i) {
    for (size_t j = 0; j < est_meas.size(); ++j) {
      if (est_meas[i].first < est_meas[j].first * 0.8) {
        EXPECT_LT(est_meas[i].second, est_meas[j].second)
            << "model ordering disagrees with measurement (" << i << " vs "
            << j << ")";
      }
    }
  }
}

}  // namespace
}  // namespace streamagg
