// Multi-producer ingest correctness: for every producer/shard split the
// P x S front end must produce exactly the per-epoch aggregates of the
// serial runtime (equivalently, of the direct reference aggregation).
// Parallelism changes scheduling and collision patterns, never answers —
// the epoch-quiescence barrier reduces every interleaving a worker can see
// to a within-epoch permutation, and all supported aggregates are
// order-independent within an epoch.

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>

#include "core/configuration.h"
#include "core/engine.h"
#include "dsms/reference_aggregator.h"
#include "dsms/sharded_runtime.h"
#include "stream/flow_generator.h"
#include "stream/zipf_generator.h"

namespace streamagg {
namespace {

Trace ZipfTrace(uint64_t seed) {
  const Schema schema = *Schema::Default(4);
  auto universe = GroupUniverse::Uniform(schema, 800, {60, 60, 60, 60}, seed);
  auto gen =
      std::move(ZipfGenerator::Make(std::move(*universe), 1.0, seed + 1))
          .value();
  return Trace::Generate(*gen, 60000, 12.0);
}

Trace FlowTrace(uint64_t seed) {
  FlowGeneratorOptions options;
  options.seed = seed;
  auto gen = std::move(FlowGenerator::MakePaperTrace(options)).value();
  return Trace::Generate(*gen, 60000, 12.0);
}

std::vector<RuntimeRelationSpec> SpecsFor(const Schema& schema,
                                          const std::string& config_text,
                                          double buckets_per_table = 128.0) {
  auto config = Configuration::Parse(schema, config_text);
  EXPECT_TRUE(config.ok()) << config_text;
  auto specs = config->ToRuntimeSpecs(
      std::vector<double>(config->num_nodes(), buckets_per_table));
  EXPECT_TRUE(specs.ok());
  return *specs;
}

/// The property at the heart of this test file: run `trace` through a
/// (P, S) front end and demand bit-identical per-epoch aggregates against
/// the reference for every query of the configuration.
void ExpectSplitMatchesReference(const Trace& trace,
                                 const std::string& config_text,
                                 double epoch_seconds, int num_producers,
                                 int num_shards) {
  const std::vector<RuntimeRelationSpec> specs =
      SpecsFor(trace.schema(), config_text);
  ShardedRuntime::Options options;
  options.num_shards = num_shards;
  options.num_producers = num_producers;
  auto sharded =
      ShardedRuntime::Make(trace.schema(), specs, epoch_seconds, options);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  (*sharded)->ProcessTrace(trace);

  auto config = Configuration::Parse(trace.schema(), config_text);
  const std::vector<QueryDef> queries = config->QueryDefs();
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const auto expected = ComputeReferenceAggregate(
        trace, queries[qi].group_by, epoch_seconds, queries[qi].metrics);
    std::string diagnostic;
    EXPECT_TRUE(AggregatesEqual(expected, (*sharded)->hfta(),
                                static_cast<int>(qi), &diagnostic))
        << config_text << " producers=" << num_producers
        << " shards=" << num_shards << " query " << qi << ": " << diagnostic;
  }
  // Record conservation: partitioning and striping lose or duplicate
  // nothing, for any split.
  EXPECT_EQ((*sharded)->counters().records, trace.size())
      << "producers=" << num_producers << " shards=" << num_shards;
}

TEST(MultiProducerTest, AllSplitsMatchReferenceOnZipfTrace) {
  const Trace trace = ZipfTrace(0xa11);
  for (int producers : {1, 2, 4}) {
    for (int shards : {1, 2, 4}) {
      ExpectSplitMatchesReference(trace, "ABCD(AB BCD(BC BD CD))", 3.0,
                                  producers, shards);
    }
  }
}

TEST(MultiProducerTest, AllSplitsMatchReferenceOnFlowTrace) {
  const Trace trace = FlowTrace(0xf2);
  for (int producers : {1, 2, 4}) {
    for (int shards : {1, 2, 4}) {
      ExpectSplitMatchesReference(trace, "ABCD(AB BCD(BC BD CD))", 3.0,
                                  producers, shards);
    }
  }
}

TEST(MultiProducerTest, SingleEpochStreamAcrossSplits) {
  // epoch_seconds == 0: one everlasting epoch, so the multi-producer path
  // never sees a boundary and the whole trace is one striped run.
  const Trace trace = ZipfTrace(0x5e);
  for (int producers : {1, 4}) {
    ExpectSplitMatchesReference(trace, "A B C D", 0.0, producers, 2);
  }
}

TEST(MultiProducerTest, MatchesSerialRuntimeEpochForEpoch) {
  // Against the serial runtime directly (not just the reference): same
  // epochs, same per-epoch results.
  const Trace trace = ZipfTrace(0x91c);
  const std::vector<RuntimeRelationSpec> specs =
      SpecsFor(trace.schema(), "ABCD(AB BCD(BC BD CD))");

  auto serial = ConfigurationRuntime::Make(trace.schema(), specs, 3.0);
  ASSERT_TRUE(serial.ok());
  (*serial)->ProcessTrace(trace);

  ShardedRuntime::Options options;
  options.num_shards = 2;
  options.num_producers = 4;
  auto sharded = ShardedRuntime::Make(trace.schema(), specs, 3.0, options);
  ASSERT_TRUE(sharded.ok());
  (*sharded)->ProcessTrace(trace);

  for (int qi = 0; qi < (*serial)->hfta().num_queries(); ++qi) {
    const std::vector<uint64_t> epochs = (*serial)->hfta().Epochs(qi);
    EXPECT_EQ(epochs, (*sharded)->hfta().Epochs(qi)) << "query " << qi;
    for (uint64_t epoch : epochs) {
      EXPECT_TRUE((*serial)->hfta().Result(qi, epoch) ==
                  (*sharded)->hfta().Result(qi, epoch))
          << "query " << qi << " epoch " << epoch;
    }
  }
}

TEST(MultiProducerTest, ProducerStatsConserveRecordsAndShareWork) {
  const Trace trace = ZipfTrace(0x7c0);
  const std::vector<RuntimeRelationSpec> specs =
      SpecsFor(trace.schema(), "ABCD(AB BCD(BC BD CD))");
  ShardedRuntime::Options options;
  options.num_shards = 2;
  options.num_producers = 4;
  auto sharded = ShardedRuntime::Make(trace.schema(), specs, 3.0, options);
  ASSERT_TRUE(sharded.ok());
  (*sharded)->ProcessTrace(trace);

  uint64_t by_producer = 0;
  int active_producers = 0;
  for (int p = 0; p < (*sharded)->num_producers(); ++p) {
    const ShardIngestStats stats = (*sharded)->producer_stats(p);
    by_producer += stats.records;
    if (stats.records > 0) ++active_producers;
  }
  uint64_t by_shard = 0;
  for (int s = 0; s < (*sharded)->num_shards(); ++s) {
    by_shard += (*sharded)->shard_stats(s).records;
  }
  // Row sums and column sums of the P x S matrix both total the trace.
  EXPECT_EQ(by_producer, trace.size());
  EXPECT_EQ(by_shard, trace.size());
  // A 60k-record trace striped over 4 producers engages all of them.
  EXPECT_EQ(active_producers, 4);
}

TEST(MultiProducerTest, PinnedThreadsProduceIdenticalResults) {
  // Affinity is an optimization: pinning (on whatever topology the test
  // machine has) must not change any answer.
  const Trace trace = ZipfTrace(0xaff);
  const std::vector<RuntimeRelationSpec> specs =
      SpecsFor(trace.schema(), "ABCD(AB BCD(BC BD CD))");
  ShardedRuntime::Options options;
  options.num_shards = 2;
  options.num_producers = 2;
  options.pin_threads = true;
  auto sharded = ShardedRuntime::Make(trace.schema(), specs, 3.0, options);
  ASSERT_TRUE(sharded.ok());
  // The planned layout is exposed for telemetry; sizes always match P and S.
  const AffinityLayout& layout = (*sharded)->layout();
  EXPECT_EQ(layout.producer_cpu.size(), 2u);
  EXPECT_EQ(layout.shard_cpu.size(), 2u);
  (*sharded)->ProcessTrace(trace);

  auto config = Configuration::Parse(trace.schema(), "ABCD(AB BCD(BC BD CD))");
  const std::vector<QueryDef> queries = config->QueryDefs();
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const auto expected = ComputeReferenceAggregate(
        trace, queries[qi].group_by, 3.0, queries[qi].metrics);
    std::string diagnostic;
    EXPECT_TRUE(AggregatesEqual(expected, (*sharded)->hfta(),
                                static_cast<int>(qi), &diagnostic))
        << "query " << qi << ": " << diagnostic;
  }
}

TEST(MultiProducerTest, EngineMultiProducerMatchesSerialEngine) {
  const Schema schema = *Schema::Default(4);
  const Trace trace = ZipfTrace(0xe9);

  auto run = [&](int num_producers, int num_shards) {
    std::vector<QueryDef> queries = {
        QueryDef(*schema.ParseAttributeSet("AB")),
        QueryDef(*schema.ParseAttributeSet("BC")),
        QueryDef(*schema.ParseAttributeSet("CD"))};
    StreamAggEngine::Options options;
    options.memory_words = 8000;
    options.sample_size = 10000;
    options.epoch_seconds = 3.0;
    options.clustered = false;
    options.num_shards = num_shards;
    options.num_producers = num_producers;
    auto engine =
        std::move(StreamAggEngine::FromQueryDefs(schema, queries, options))
            .value();
    // Batched feed: exercises the striped ProcessBatch path.
    const std::span<const Record> records = trace.records();
    for (size_t i = 0; i < records.size(); i += 1024) {
      EXPECT_TRUE(
          engine
              ->ProcessBatch(records.subspan(i,
                                             std::min<size_t>(
                                                 1024, records.size() - i)))
              .ok());
    }
    EXPECT_TRUE(engine->Finish().ok());
    return engine;
  };

  auto serial = run(1, 1);
  for (auto [producers, shards] : {std::pair{4, 1}, {2, 2}, {4, 4}}) {
    auto parallel = run(producers, shards);
    for (int qi = 0; qi < serial->num_queries(); ++qi) {
      const std::vector<uint64_t> epochs = serial->Epochs(qi);
      EXPECT_EQ(epochs, parallel->Epochs(qi))
          << "producers=" << producers << " shards=" << shards << " query "
          << qi;
      for (uint64_t epoch : epochs) {
        EXPECT_TRUE(serial->EpochResult(qi, epoch) ==
                    parallel->EpochResult(qi, epoch))
            << "producers=" << producers << " shards=" << shards << " query "
            << qi << " epoch " << epoch;
      }
    }
    EXPECT_EQ(serial->counters().records, parallel->counters().records);
  }
}

TEST(MultiProducerTest, EngineProducersOnlyEngagesShardedRuntime) {
  // num_producers > 1 with num_shards == 1 still runs the parallel front
  // end (one consumer fed by P queues) — and still matches the reference.
  const Schema schema = *Schema::Default(4);
  const Trace trace = ZipfTrace(0x1b);
  std::vector<QueryDef> queries = {QueryDef(*schema.ParseAttributeSet("AB"))};
  StreamAggEngine::Options options;
  options.memory_words = 8000;
  options.sample_size = 5000;
  options.epoch_seconds = 3.0;
  options.clustered = false;
  options.num_producers = 3;
  auto engine =
      std::move(StreamAggEngine::FromQueryDefs(schema, queries, options))
          .value();
  EXPECT_TRUE(engine->ProcessBatch(trace.records()).ok());
  EXPECT_TRUE(engine->Finish().ok());
  const TelemetrySnapshot snapshot = engine->telemetry();
  EXPECT_EQ(snapshot.num_producers, 3);
  EXPECT_EQ(snapshot.num_shards, 1);
  ASSERT_EQ(snapshot.producers.size(), 3u);

  const auto expected = ComputeReferenceAggregate(trace, queries[0].group_by,
                                                  3.0, queries[0].metrics);
  for (const auto& [epoch, groups] : expected) {
    EXPECT_TRUE(engine->EpochResult(0, epoch) == groups) << "epoch " << epoch;
  }
}

TEST(MultiProducerTest, ShardedTelemetryHistoryCapturesEpochBarriers) {
  // Satellite: telemetry_epoch_snapshots now works for sharded engines —
  // each epoch crossing quiesces the matrix at a FlushEpoch barrier and
  // records a merged snapshot.
  const Schema schema = *Schema::Default(4);
  const Trace trace = ZipfTrace(0x8d);
  std::vector<QueryDef> queries = {
      QueryDef(*schema.ParseAttributeSet("AB")),
      QueryDef(*schema.ParseAttributeSet("CD"))};
  StreamAggEngine::Options options;
  options.memory_words = 8000;
  options.sample_size = 5000;
  options.epoch_seconds = 3.0;
  options.clustered = false;
  options.num_shards = 2;
  options.num_producers = 2;
  options.telemetry_epoch_snapshots = true;
  auto engine =
      std::move(StreamAggEngine::FromQueryDefs(schema, queries, options))
          .value();
  // Chunked feed: epoch-crossing detection is batch-granular, so captures
  // happen at the boundary-straddling chunks.
  const std::span<const Record> records = trace.records();
  for (size_t i = 0; i < records.size(); i += 1024) {
    EXPECT_TRUE(
        engine
            ->ProcessBatch(records.subspan(
                i, std::min<size_t>(1024, records.size() - i)))
            .ok());
  }
  EXPECT_TRUE(engine->Finish().ok());

  // 12 seconds of trace at 3 s/epoch: boundaries were crossed.
  const auto& history = engine->telemetry_history();
  ASSERT_GE(history.size(), 2u);
  uint64_t last_epoch = 0;
  bool first = true;
  for (const TelemetrySnapshot& snapshot : history) {
    // Merged across both shards, with both producers reported.
    EXPECT_EQ(snapshot.num_shards, 2);
    EXPECT_EQ(snapshot.num_producers, 2);
    EXPECT_EQ(snapshot.shards.size(), 2u);
    EXPECT_EQ(snapshot.producers.size(), 2u);
    if (!first) {
      EXPECT_GT(snapshot.epoch, last_epoch);
    }
    last_epoch = snapshot.epoch;
    first = false;
  }
  // History snapshots are cumulative: the last one has seen more records
  // than the first (counters are lifetime totals).
  EXPECT_GT(history.back().counters.records, history.front().counters.records);
}

}  // namespace
}  // namespace streamagg
