#include "util/status.h"

#include <gtest/gtest.h>

namespace streamagg {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad phi");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad phi");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad phi");
}

TEST(StatusTest, FactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("stream"));
  std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "stream");
}

Result<int> Halve(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> QuarterViaMacro(int x) {
  STREAMAGG_ASSIGN_OR_RETURN(int half, Halve(x));
  STREAMAGG_ASSIGN_OR_RETURN(int quarter, Halve(half));
  return quarter;
}

TEST(ResultTest, AssignOrReturnPropagatesValue) {
  Result<int> r = QuarterViaMacro(8);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 2);
}

TEST(ResultTest, AssignOrReturnPropagatesError) {
  Result<int> r = QuarterViaMacro(6);  // 6 -> 3, second halving fails.
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::OutOfRange("negative");
  return Status::OK();
}

Status CheckBoth(int a, int b) {
  STREAMAGG_RETURN_NOT_OK(FailIfNegative(a));
  STREAMAGG_RETURN_NOT_OK(FailIfNegative(b));
  return Status::OK();
}

TEST(ResultTest, ReturnNotOkShortCircuits) {
  EXPECT_TRUE(CheckBoth(1, 2).ok());
  EXPECT_EQ(CheckBoth(-1, 2).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(CheckBoth(1, -2).code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace streamagg
