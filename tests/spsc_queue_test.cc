// Unit coverage for the SPSC ring that carries the sharded ingest path
// (util/spsc_queue.h): capacity rounding, wraparound FIFO order, full/empty
// edges, move-only element support, and a two-thread stress run that checks
// every element crosses exactly once, in order.

#include "util/spsc_queue.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

namespace streamagg {
namespace {

TEST(SpscQueueTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscQueue<int>(1).capacity(), 1u);
  EXPECT_EQ(SpscQueue<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscQueue<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscQueue<int>(4).capacity(), 4u);
  EXPECT_EQ(SpscQueue<int>(5).capacity(), 8u);
  EXPECT_EQ(SpscQueue<int>(1000).capacity(), 1024u);
}

TEST(SpscQueueTest, PushPopPreservesFifoOrder) {
  SpscQueue<int> queue(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(queue.TryPush(i));
  int out = -1;
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(queue.TryPop(&out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(queue.TryPop(&out));
  EXPECT_TRUE(queue.Empty());
}

TEST(SpscQueueTest, FullQueueRejectsPushUntilPopped) {
  SpscQueue<int> queue(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(queue.TryPush(i));
  // No wasted slot: the ring holds exactly capacity() elements.
  EXPECT_EQ(queue.SizeApprox(), 4u);
  EXPECT_FALSE(queue.TryPush(99));
  int out = -1;
  EXPECT_TRUE(queue.TryPop(&out));
  EXPECT_EQ(out, 0);
  EXPECT_TRUE(queue.TryPush(99));
  // Drain: 1, 2, 3, 99.
  for (int expected : {1, 2, 3, 99}) {
    EXPECT_TRUE(queue.TryPop(&out));
    EXPECT_EQ(out, expected);
  }
}

TEST(SpscQueueTest, WraparoundManyTimesStaysFifo) {
  // Indices are free-running (never wrapped to the mask), so exercise
  // several full laps of a small ring.
  SpscQueue<uint64_t> queue(4);
  uint64_t out = 0;
  for (uint64_t i = 0; i < 1000; ++i) {
    EXPECT_TRUE(queue.TryPush(i));
    EXPECT_TRUE(queue.TryPop(&out));
    EXPECT_EQ(out, i);
  }
  EXPECT_TRUE(queue.Empty());
}

TEST(SpscQueueTest, MoveOnlyElementsPassThrough) {
  SpscQueue<std::unique_ptr<int>> queue(8);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(queue.TryPush(std::make_unique<int>(i)));
  }
  std::unique_ptr<int> out;
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(queue.TryPop(&out));
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(*out, i);
  }
}

TEST(SpscQueueTest, FailedMovePushLeavesItemIntact) {
  SpscQueue<std::unique_ptr<int>> queue(2);
  EXPECT_TRUE(queue.TryPush(std::make_unique<int>(0)));
  EXPECT_TRUE(queue.TryPush(std::make_unique<int>(1)));
  std::unique_ptr<int> extra = std::make_unique<int>(2);
  EXPECT_FALSE(queue.TryPush(std::move(extra)));
  // The contract: a rejected rvalue push does not consume the value, so the
  // producer can retry after backoff.
  ASSERT_NE(extra, nullptr);
  EXPECT_EQ(*extra, 2);
}

TEST(SpscQueueTest, SizeApproxTracksOccupancy) {
  SpscQueue<int> queue(8);
  EXPECT_EQ(queue.SizeApprox(), 0u);
  EXPECT_TRUE(queue.Empty());
  queue.TryPush(1);
  queue.TryPush(2);
  EXPECT_EQ(queue.SizeApprox(), 2u);
  EXPECT_FALSE(queue.Empty());
  int out = 0;
  queue.TryPop(&out);
  EXPECT_EQ(queue.SizeApprox(), 1u);
}

TEST(SpscQueueTest, TwoThreadStressDeliversEverythingInOrder) {
  // One producer, one consumer, a ring much smaller than the element count
  // so both full-queue and empty-queue paths are hammered. The consumer
  // verifies the exact sequence — any lost, duplicated, or reordered
  // element fails.
  constexpr uint64_t kCount = 200000;
  SpscQueue<uint64_t> queue(64);
  std::thread producer([&] {
    for (uint64_t i = 0; i < kCount; ++i) {
      while (!queue.TryPush(i)) std::this_thread::yield();
    }
  });
  uint64_t expected = 0;
  uint64_t value = 0;
  while (expected < kCount) {
    if (queue.TryPop(&value)) {
      ASSERT_EQ(value, expected);
      ++expected;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_TRUE(queue.Empty());
}

}  // namespace
}  // namespace streamagg
