#include "stream/trace.h"

#include <unordered_set>

#include <gtest/gtest.h>

#include "stream/flow_generator.h"
#include "stream/uniform_generator.h"

namespace streamagg {
namespace {

TEST(TraceTest, GenerateAssignsMonotoneTimestamps) {
  auto gen = UniformGenerator::Make(*Schema::Default(3), 50, 1);
  ASSERT_TRUE(gen.ok());
  const Trace trace = Trace::Generate(**gen, 1000, 62.0);
  EXPECT_EQ(trace.size(), 1000u);
  EXPECT_DOUBLE_EQ(trace.duration_seconds(), 62.0);
  EXPECT_FALSE(trace.has_flow_ids());
  double prev = -1.0;
  for (const Record& r : trace.records()) {
    EXPECT_GE(r.timestamp, prev);
    EXPECT_LT(r.timestamp, 62.0);
    prev = r.timestamp;
  }
}

TEST(TraceTest, GenerateRecordsFlowIds) {
  auto gen = FlowGenerator::MakePaperTrace({});
  ASSERT_TRUE(gen.ok());
  const Trace trace = Trace::Generate(**gen, 5000, 62.0);
  ASSERT_TRUE(trace.has_flow_ids());
  EXPECT_EQ(trace.flow_ids().size(), trace.size());
}

TEST(TraceTest, OneRecordPerFlowDeclusters) {
  auto gen = FlowGenerator::MakePaperTrace({});
  ASSERT_TRUE(gen.ok());
  const Trace trace = Trace::Generate(**gen, 50000, 62.0);
  auto declustered = trace.OneRecordPerFlow();
  ASSERT_TRUE(declustered.ok());
  std::unordered_set<uint32_t> flows(trace.flow_ids().begin(),
                                     trace.flow_ids().end());
  EXPECT_EQ(declustered->size(), flows.size());
  // Each flow id appears exactly once in the declustered trace.
  std::unordered_set<uint32_t> seen;
  for (uint32_t f : declustered->flow_ids()) {
    EXPECT_TRUE(seen.insert(f).second);
  }
}

TEST(TraceTest, OneRecordPerFlowRequiresFlowIds) {
  auto gen = UniformGenerator::Make(*Schema::Default(3), 50, 1);
  ASSERT_TRUE(gen.ok());
  const Trace trace = Trace::Generate(**gen, 100, 1.0);
  EXPECT_FALSE(trace.OneRecordPerFlow().ok());
}

TEST(TraceTest, ProjectPrefixNarrowsSchema) {
  auto gen = UniformGenerator::Make(*Schema::Default(4), 50, 2);
  ASSERT_TRUE(gen.ok());
  const Trace trace = Trace::Generate(**gen, 500, 10.0);
  auto narrow = trace.ProjectPrefix(2);
  ASSERT_TRUE(narrow.ok());
  EXPECT_EQ(narrow->schema().num_attributes(), 2);
  EXPECT_EQ(narrow->size(), trace.size());
  for (size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(narrow->record(i).values[0], trace.record(i).values[0]);
    EXPECT_EQ(narrow->record(i).values[1], trace.record(i).values[1]);
    EXPECT_DOUBLE_EQ(narrow->record(i).timestamp, trace.record(i).timestamp);
  }
}

TEST(TraceTest, ProjectPrefixValidatesWidth) {
  auto gen = UniformGenerator::Make(*Schema::Default(4), 50, 2);
  ASSERT_TRUE(gen.ok());
  const Trace trace = Trace::Generate(**gen, 10, 1.0);
  EXPECT_FALSE(trace.ProjectPrefix(0).ok());
  EXPECT_FALSE(trace.ProjectPrefix(5).ok());
  EXPECT_TRUE(trace.ProjectPrefix(4).ok());
}

}  // namespace
}  // namespace streamagg
