// CPU topology discovery and affinity planning (util/cpu_topology.h). The
// planner is pure over a plain-data topology, so synthetic NUMA layouts can
// be tested exactly; Detect() is only sanity-checked against the live
// machine (the test must pass on any container).

#include "util/cpu_topology.h"

#include <gtest/gtest.h>

#include <set>

namespace streamagg {
namespace {

CpuTopology SyntheticTopology(int nodes, int cpus_per_node) {
  CpuTopology topology;
  int next = 0;
  for (int n = 0; n < nodes; ++n) {
    for (int c = 0; c < cpus_per_node; ++c) {
      topology.cpus.push_back(CpuInfo{next++, n});
    }
  }
  return topology;
}

TEST(CpuTopologyTest, ParseCpuListHandlesRangesAndSingles) {
  EXPECT_EQ(CpuTopology::ParseCpuList("0-3"),
            (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(CpuTopology::ParseCpuList("0-3,8,10-11"),
            (std::vector<int>{0, 1, 2, 3, 8, 10, 11}));
  EXPECT_EQ(CpuTopology::ParseCpuList("5"), (std::vector<int>{5}));
  EXPECT_EQ(CpuTopology::ParseCpuList(""), (std::vector<int>{}));
  // Malformed chunks are skipped, valid ones kept.
  EXPECT_EQ(CpuTopology::ParseCpuList("x,2,7-5,3"),
            (std::vector<int>{2, 3}));
}

TEST(CpuTopologyTest, DetectReturnsAtLeastOneCpu) {
  const CpuTopology topology = CpuTopology::Detect();
  ASSERT_GE(topology.num_cpus(), 1);
  ASSERT_GE(topology.num_nodes(), 1);
  // Sorted by (node, cpu) with no duplicate CPU ids.
  std::set<int> seen;
  int last_node = -1;
  for (const CpuInfo& cpu : topology.cpus) {
    EXPECT_GE(cpu.node, last_node);
    last_node = cpu.node;
    EXPECT_TRUE(seen.insert(cpu.cpu).second) << "duplicate cpu " << cpu.cpu;
  }
}

TEST(CpuTopologyTest, EmptyTopologyLeavesEverythingUnpinned) {
  const AffinityLayout layout = AffinityLayout::Plan(CpuTopology{}, 3, 5);
  ASSERT_EQ(layout.producer_cpu.size(), 3u);
  ASSERT_EQ(layout.shard_cpu.size(), 5u);
  for (int cpu : layout.producer_cpu) EXPECT_EQ(cpu, -1);
  for (int node : layout.producer_node) EXPECT_EQ(node, -1);
  for (int cpu : layout.shard_cpu) EXPECT_EQ(cpu, -1);
  for (int node : layout.shard_node) EXPECT_EQ(node, -1);
}

TEST(CpuTopologyTest, PlanSpreadsProducersAcrossNodes) {
  const CpuTopology topology = SyntheticTopology(2, 4);  // 8 CPUs, 2 nodes.
  const AffinityLayout layout = AffinityLayout::Plan(topology, 4, 4);
  // Producers round-robin over the nodes: 0,1,0,1.
  EXPECT_EQ(layout.producer_node, (std::vector<int>{0, 1, 0, 1}));
  // All distinct CPUs.
  std::set<int> cpus(layout.producer_cpu.begin(), layout.producer_cpu.end());
  EXPECT_EQ(cpus.size(), 4u);
  for (int cpu : layout.producer_cpu) EXPECT_GE(cpu, 0);
}

TEST(CpuTopologyTest, ShardsFollowTheirDominantProducersNode) {
  const CpuTopology topology = SyntheticTopology(2, 4);
  const AffinityLayout layout = AffinityLayout::Plan(topology, 2, 4);
  // Producer 0 -> node 0, producer 1 -> node 1. Shard s is fed mostly by
  // producer (s mod 2), so shards 0,2 belong on node 0 and shards 1,3 on
  // node 1 — and there is room (4 CPUs per node, 1 producer + 2 shards).
  EXPECT_EQ(layout.shard_node, (std::vector<int>{0, 1, 0, 1}));
  // No CPU is handed out twice across producers and shards.
  std::set<int> cpus;
  for (int cpu : layout.producer_cpu) EXPECT_TRUE(cpus.insert(cpu).second);
  for (int cpu : layout.shard_cpu) EXPECT_TRUE(cpus.insert(cpu).second);
}

TEST(CpuTopologyTest, ShardsSpillToNextNodeWhenPreferredIsFull) {
  // 2 nodes x 2 CPUs. One producer (node 0, 1 CPU used) and 3 shards, all
  // preferring node 0: only one fits next to the producer; the rest spill.
  const CpuTopology topology = SyntheticTopology(2, 2);
  const AffinityLayout layout = AffinityLayout::Plan(topology, 1, 3);
  EXPECT_EQ(layout.producer_node[0], 0);
  EXPECT_EQ(layout.shard_node[0], 0);  // Fits beside the producer.
  EXPECT_EQ(layout.shard_node[1], 1);  // Node 0 full: spills.
  EXPECT_EQ(layout.shard_node[2], 1);
}

TEST(CpuTopologyTest, OverflowThreadsStayUnpinned) {
  // More threads than CPUs: the overflow must stay unpinned (-1), never
  // stacked onto an already-assigned CPU.
  const CpuTopology topology = SyntheticTopology(1, 2);
  const AffinityLayout layout = AffinityLayout::Plan(topology, 2, 4);
  int pinned = 0;
  std::set<int> cpus;
  for (int cpu : layout.producer_cpu) {
    if (cpu >= 0) {
      ++pinned;
      EXPECT_TRUE(cpus.insert(cpu).second);
    }
  }
  for (int cpu : layout.shard_cpu) {
    if (cpu >= 0) {
      ++pinned;
      EXPECT_TRUE(cpus.insert(cpu).second);
    }
  }
  EXPECT_EQ(pinned, 2);  // Exactly the machine's CPU count.
}

TEST(CpuTopologyTest, PinCurrentThreadRejectsNegativeCpu) {
  EXPECT_FALSE(PinCurrentThreadToCpu(-1));
}

TEST(CpuTopologyTest, PinCurrentThreadToDetectedCpu) {
#if defined(__linux__)
  const CpuTopology topology = CpuTopology::Detect();
  ASSERT_GE(topology.num_cpus(), 1);
  // Pinning to a detected CPU should succeed on Linux (the test process is
  // allowed to restrict its own mask).
  EXPECT_TRUE(PinCurrentThreadToCpu(topology.cpus.front().cpu));
#else
  GTEST_SKIP() << "thread pinning is Linux-only";
#endif
}

}  // namespace
}  // namespace streamagg
