// Batched-ingest correctness: ProcessBatch over any batch split must be
// bit-identical to per-record ProcessRecord — same HFTA results, same
// counters — serial and sharded, on Zipf and flow traces. Also verifies the
// zero-allocation claim for the steady-state batched path by hooking the
// global allocator.

#include <atomic>
#include <cstdlib>
#include <new>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "core/configuration.h"
#include "core/engine.h"
#include "dsms/configuration_runtime.h"
#include "dsms/sharded_runtime.h"
#include "stream/flow_generator.h"
#include "stream/zipf_generator.h"
#include "util/random.h"

// ---------------------------------------------------------------------------
// Global allocation counter. Every operator new in this binary bumps it, so
// a scope that performs zero heap allocations shows a delta of zero.
// ---------------------------------------------------------------------------

namespace {
std::atomic<uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace streamagg {
namespace {

Trace ZipfTrace(uint64_t seed) {
  const Schema schema = *Schema::Default(4);
  auto universe = GroupUniverse::Uniform(schema, 800, {60, 60, 60, 60}, seed);
  auto gen =
      std::move(ZipfGenerator::Make(std::move(*universe), 1.0, seed + 1))
          .value();
  return Trace::Generate(*gen, 40000, 12.0);
}

Trace FlowTrace(uint64_t seed) {
  FlowGeneratorOptions options;
  options.seed = seed;
  auto gen = std::move(FlowGenerator::MakePaperTrace(options)).value();
  return Trace::Generate(*gen, 40000, 12.0);
}

std::vector<RuntimeRelationSpec> SpecsFor(const Schema& schema,
                                          const std::string& config_text,
                                          double buckets_per_table = 128.0) {
  auto config = Configuration::Parse(schema, config_text);
  EXPECT_TRUE(config.ok()) << config_text;
  auto specs = config->ToRuntimeSpecs(
      std::vector<double>(config->num_nodes(), buckets_per_table));
  EXPECT_TRUE(specs.ok());
  return *specs;
}

int NumQueries(const std::vector<RuntimeRelationSpec>& specs) {
  int n = 0;
  for (const auto& s : specs) n += s.is_query ? 1 : 0;
  return n;
}

void ExpectCountersEqual(const RuntimeCounters& a, const RuntimeCounters& b,
                         const std::string& label) {
  EXPECT_EQ(a.records, b.records) << label;
  EXPECT_EQ(a.intra_probes, b.intra_probes) << label;
  EXPECT_EQ(a.intra_transfers, b.intra_transfers) << label;
  EXPECT_EQ(a.flush_probes, b.flush_probes) << label;
  EXPECT_EQ(a.flush_transfers, b.flush_transfers) << label;
  EXPECT_EQ(a.epochs_flushed, b.epochs_flushed) << label;
}

void ExpectHftaEqual(const Hfta& a, const Hfta& b, int num_queries,
                     const std::string& label) {
  for (int q = 0; q < num_queries; ++q) {
    const std::vector<uint64_t> epochs = a.Epochs(q);
    ASSERT_EQ(epochs, b.Epochs(q)) << label << " query " << q;
    for (uint64_t epoch : epochs) {
      EXPECT_TRUE(a.Result(q, epoch) == b.Result(q, epoch))
          << label << " query " << q << " epoch " << epoch;
    }
  }
}

/// Feeds `trace` in batches: deterministic size `batch` when > 0, random
/// sizes in [1, 97] when batch == 0.
void FeedInBatches(ConfigurationRuntime& runtime, const Trace& trace,
                   size_t batch, uint64_t split_seed = 0) {
  const std::vector<Record>& records = trace.records();
  Random rng(split_seed);
  size_t i = 0;
  while (i < records.size()) {
    const size_t want = batch > 0 ? batch : 1 + rng.Uniform(97);
    const size_t n = std::min(want, records.size() - i);
    runtime.ProcessBatch(std::span<const Record>(&records[i], n));
    i += n;
  }
  runtime.FlushEpoch();
}

void ExpectBatchSplitsBitIdentical(const Trace& trace,
                                   const std::string& config_text,
                                   double epoch_seconds) {
  const std::vector<RuntimeRelationSpec> specs =
      SpecsFor(trace.schema(), config_text);
  const int num_queries = NumQueries(specs);

  // Baseline: one record per ProcessRecord call.
  auto baseline =
      std::move(ConfigurationRuntime::Make(trace.schema(), specs,
                                           epoch_seconds))
          .value();
  for (const Record& r : trace.records()) baseline->ProcessRecord(r);
  baseline->FlushEpoch();

  for (size_t batch : {size_t{1}, size_t{7}, size_t{64}, trace.size(),
                       size_t{0} /* random splits */}) {
    auto runtime =
        std::move(ConfigurationRuntime::Make(trace.schema(), specs,
                                             epoch_seconds))
            .value();
    FeedInBatches(*runtime, trace, batch, /*split_seed=*/batch + 17);
    const std::string label =
        config_text + " batch=" + std::to_string(batch);
    ExpectCountersEqual(runtime->counters(), baseline->counters(), label);
    ExpectHftaEqual(runtime->hfta(), baseline->hfta(), num_queries, label);
  }
}

TEST(BatchedIngestTest, ZipfBatchSplitsBitIdentical) {
  ExpectBatchSplitsBitIdentical(ZipfTrace(0xba7c), "ABCD(AB BCD(BC BD CD))",
                                3.0);
}

TEST(BatchedIngestTest, FlowBatchSplitsBitIdentical) {
  ExpectBatchSplitsBitIdentical(FlowTrace(0xf33d), "ABCD(AB BCD(BC BD CD))",
                                3.0);
}

TEST(BatchedIngestTest, FlatForestUnboundedEpochBitIdentical) {
  // Multiple raw relations and no epoch switching inside batches.
  ExpectBatchSplitsBitIdentical(ZipfTrace(0x51), "A B C D", 0.0);
}

TEST(BatchedIngestTest, MetricsBatchSplitsBitIdentical) {
  const Trace trace = FlowTrace(0x3c);
  const Schema& schema = trace.schema();
  auto base = Configuration::Parse(schema, "ABC(AB(A B) C) D");
  ASSERT_TRUE(base.ok());
  std::vector<QueryDef> defs = base->QueryDefs();
  for (QueryDef& def : defs) {
    def.metrics = {MetricSpec{AggregateOp::kSum, 0},
                   MetricSpec{AggregateOp::kMax, 3}};
  }
  auto config = Configuration::Make(schema, defs, base->PhantomSets());
  ASSERT_TRUE(config.ok());
  auto specs = config->ToRuntimeSpecs(
      std::vector<double>(config->num_nodes(), 128.0));
  ASSERT_TRUE(specs.ok());
  const int num_queries = NumQueries(*specs);

  auto baseline =
      std::move(ConfigurationRuntime::Make(schema, *specs, 3.0)).value();
  for (const Record& r : trace.records()) baseline->ProcessRecord(r);
  baseline->FlushEpoch();
  for (size_t batch : {size_t{7}, size_t{64}}) {
    auto runtime =
        std::move(ConfigurationRuntime::Make(schema, *specs, 3.0)).value();
    FeedInBatches(*runtime, trace, batch);
    ExpectCountersEqual(runtime->counters(), baseline->counters(), "metrics");
    ExpectHftaEqual(runtime->hfta(), baseline->hfta(), num_queries, "metrics");
  }
}

TEST(BatchedIngestTest, ShardedBatchedMatchesShardedPerRecord) {
  const Trace trace = ZipfTrace(0x7e57);
  const std::string config_text = "ABCD(AB BCD(BC BD CD))";
  const std::vector<RuntimeRelationSpec> specs =
      SpecsFor(trace.schema(), config_text);
  const int num_queries = NumQueries(specs);
  for (int shards : {1, 2, 4, 7}) {
    ShardedRuntime::Options options;
    options.num_shards = shards;

    auto per_record = ShardedRuntime::Make(trace.schema(), specs, 3.0,
                                           options);
    ASSERT_TRUE(per_record.ok());
    for (const Record& r : trace.records()) (*per_record)->ProcessRecord(r);
    (*per_record)->FlushEpoch();

    auto batched = ShardedRuntime::Make(trace.schema(), specs, 3.0, options);
    ASSERT_TRUE(batched.ok());
    (*batched)->ProcessBatch(trace.records());
    (*batched)->FlushEpoch();

    const std::string label = "shards=" + std::to_string(shards);
    ExpectCountersEqual((*batched)->counters(), (*per_record)->counters(),
                        label);
    ExpectHftaEqual((*batched)->hfta(), (*per_record)->hfta(), num_queries,
                    label);
  }
}

TEST(BatchedIngestTest, EngineBatchedMatchesPerRecord) {
  // End to end through StreamAggEngine, including the sampling-phase
  // crossover landing mid-batch.
  const Trace trace = ZipfTrace(0xe6);
  const Schema& schema = trace.schema();
  std::vector<QueryDef> queries = {QueryDef(*schema.ParseAttributeSet("AB")),
                                   QueryDef(*schema.ParseAttributeSet("BC")),
                                   QueryDef(*schema.ParseAttributeSet("CD"))};
  StreamAggEngine::Options options;
  options.memory_words = 4000;
  options.sample_size = 5000;
  options.epoch_seconds = 3.0;
  options.clustered = false;

  auto per_record =
      std::move(StreamAggEngine::FromQueryDefs(schema, queries, options))
          .value();
  for (const Record& r : trace.records()) {
    ASSERT_TRUE(per_record->Process(r).ok());
  }
  ASSERT_TRUE(per_record->Finish().ok());

  for (size_t batch : {size_t{64}, size_t{997}}) {
    auto engine =
        std::move(StreamAggEngine::FromQueryDefs(schema, queries, options))
            .value();
    const std::vector<Record>& records = trace.records();
    for (size_t i = 0; i < records.size(); i += batch) {
      const size_t n = std::min(batch, records.size() - i);
      ASSERT_TRUE(
          engine->ProcessBatch(std::span<const Record>(&records[i], n)).ok());
    }
    ASSERT_TRUE(engine->Finish().ok());

    const std::string label = "engine batch=" + std::to_string(batch);
    ExpectCountersEqual(engine->counters(), per_record->counters(), label);
    for (size_t q = 0; q < queries.size(); ++q) {
      const std::vector<uint64_t> epochs =
          engine->Epochs(static_cast<int>(q));
      ASSERT_EQ(epochs, per_record->Epochs(static_cast<int>(q))) << label;
      for (uint64_t epoch : epochs) {
        EXPECT_TRUE(engine->EpochResult(static_cast<int>(q), epoch) ==
                    per_record->EpochResult(static_cast<int>(q), epoch))
            << label << " query " << q << " epoch " << epoch;
      }
    }
  }
}

TEST(BatchedIngestAllocationTest, SteadyStateBatchedPathAllocatesNothing) {
  // Steady state = every probe updates a resident group (no evictions, no
  // HFTA traffic). Constructed exactly: warm the table, read back the
  // resident groups, and re-feed records that project onto them. The
  // batched path must then touch the heap zero times.
  const Schema schema = *Schema::Default(4);
  RuntimeRelationSpec spec;
  spec.attrs = *schema.ParseAttributeSet("AB");
  spec.num_buckets = 4096;
  spec.is_query = true;
  spec.query_index = 0;
  auto runtime =
      std::move(ConfigurationRuntime::Make(schema, {spec},
                                           /*epoch_seconds=*/0.0))
          .value();

  // Warm-up: 512 distinct-ish groups (collisions during warm-up are fine).
  std::vector<Record> warm(2048);
  Random rng(0xa110c);
  for (Record& r : warm) {
    r.values[0] = static_cast<uint32_t>(rng.Uniform(32));
    r.values[1] = static_cast<uint32_t>(rng.Uniform(16));
  }
  runtime->ProcessBatch(warm);

  // Steady-state batch: one record per resident group, repeated 16 times.
  std::vector<Record> steady;
  runtime->table(0).ForEach([&](const GroupKey& key, uint64_t) {
    Record r;
    r.values[0] = key.values[0];
    r.values[1] = key.values[1];
    steady.push_back(r);
  });
  ASSERT_FALSE(steady.empty());
  const uint64_t collisions_before = runtime->table(0).collisions();

  const uint64_t allocations_before =
      g_allocations.load(std::memory_order_relaxed);
  for (int pass = 0; pass < 16; ++pass) {
    runtime->ProcessBatch(steady);
  }
  const uint64_t allocations_after =
      g_allocations.load(std::memory_order_relaxed);

  // Sanity: the workload really was eviction-free steady state.
  EXPECT_EQ(runtime->table(0).collisions(), collisions_before);
  EXPECT_EQ(allocations_after - allocations_before, 0u)
      << "steady-state ProcessBatch allocated";
}

}  // namespace
}  // namespace streamagg
