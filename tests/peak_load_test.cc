#include "core/peak_load.h"

#include <gtest/gtest.h>

#include "core/space_allocation.h"

namespace streamagg {
namespace {

class PeakLoadTest : public ::testing::Test {
 protected:
  PeakLoadTest()
      : schema_(*Schema::Default(4)),
        catalog_(*RelationCatalog::Synthetic(
            schema_,
            {
                {Set("A").mask(), 552},
                {Set("B").mask(), 600},
                {Set("C").mask(), 700},
                {Set("D").mask(), 800},
                {Set("AB").mask(), 1846},
                {Set("BC").mask(), 1800},
                {Set("BD").mask(), 1900},
                {Set("CD").mask(), 2000},
                {Set("BCD").mask(), 2300},
                {Set("ABCD").mask(), 2837},
            },
            // Clustered netflow-like regime (the paper's Section 6.3.4
            // setting): low collision rates make shifting space from
            // queries to phantoms effective.
            /*flow_length=*/30.0)),
        precise_(),
        cost_model_(&catalog_, &precise_, CostParams{1.0, 50.0}),
        allocator_(&cost_model_) {}

  AttributeSet Set(const std::string& spec) {
    return *schema_.ParseAttributeSet(spec);
  }

  Schema schema_;
  RelationCatalog catalog_;
  PreciseCollisionModel precise_;
  CostModel cost_model_;
  SpaceAllocator allocator_;
};

TEST_F(PeakLoadTest, NoAdjustmentWhenConstraintAlreadyHolds) {
  auto config = Configuration::Parse(schema_, "ABCD(AB BCD(BC BD CD))");
  ASSERT_TRUE(config.ok());
  auto buckets = allocator_.Allocate(*config, 40000.0, AllocationScheme::kSL);
  ASSERT_TRUE(buckets.ok());
  const double eu = cost_model_.EndOfEpochCost(*config, *buckets);
  const PeakLoadResult result = EnforcePeakLoad(
      cost_model_, *config, *buckets, eu * 1.01, PeakLoadMethod::kShrink);
  EXPECT_TRUE(result.satisfied);
  EXPECT_EQ(result.buckets, *buckets);
}

TEST_F(PeakLoadTest, ShrinkMeetsTightenedConstraint) {
  auto config = Configuration::Parse(schema_, "ABCD(AB BCD(BC BD CD))");
  ASSERT_TRUE(config.ok());
  auto buckets = allocator_.Allocate(*config, 40000.0, AllocationScheme::kSL);
  ASSERT_TRUE(buckets.ok());
  const double eu = cost_model_.EndOfEpochCost(*config, *buckets);
  for (double fraction : {0.95, 0.9, 0.85}) {
    const PeakLoadResult result =
        EnforcePeakLoad(cost_model_, *config, *buckets, eu * fraction,
                        PeakLoadMethod::kShrink);
    EXPECT_TRUE(result.satisfied) << fraction;
    EXPECT_LE(result.end_of_epoch_cost, eu * fraction * (1.0 + 1e-6));
    // Shrinking should not waste headroom: E_u lands near the limit.
    EXPECT_GT(result.end_of_epoch_cost, eu * fraction * 0.98);
  }
}

TEST_F(PeakLoadTest, ShiftMeetsTightenedConstraint) {
  auto config = Configuration::Parse(schema_, "ABCD(AB BCD(BC BD CD))");
  ASSERT_TRUE(config.ok());
  auto buckets = allocator_.Allocate(*config, 40000.0, AllocationScheme::kSL);
  ASSERT_TRUE(buckets.ok());
  const double eu = cost_model_.EndOfEpochCost(*config, *buckets);
  const PeakLoadResult result = EnforcePeakLoad(
      cost_model_, *config, *buckets, eu * 0.9, PeakLoadMethod::kShift);
  EXPECT_TRUE(result.satisfied);
  EXPECT_LE(result.end_of_epoch_cost, eu * 0.9 * (1.0 + 1e-6));
}

TEST_F(PeakLoadTest, ShiftPreservesTotalMemory) {
  auto config = Configuration::Parse(schema_, "ABCD(AB BCD(BC BD CD))");
  ASSERT_TRUE(config.ok());
  auto buckets = allocator_.Allocate(*config, 40000.0, AllocationScheme::kSL);
  ASSERT_TRUE(buckets.ok());
  const double eu = cost_model_.EndOfEpochCost(*config, *buckets);
  const PeakLoadResult result = EnforcePeakLoad(
      cost_model_, *config, *buckets, eu * 0.9, PeakLoadMethod::kShift);
  auto words = [&](const std::vector<double>& b) {
    double total = 0.0;
    for (int i = 0; i < config->num_nodes(); ++i) {
      total += b[i] * (config->node(i).attrs.Count() + 1);
    }
    return total;
  };
  EXPECT_NEAR(words(result.buckets), words(*buckets), words(*buckets) * 0.01);
}

TEST_F(PeakLoadTest, ShrinkReducesTotalMemory) {
  auto config = Configuration::Parse(schema_, "ABCD(AB BCD(BC BD CD))");
  ASSERT_TRUE(config.ok());
  auto buckets = allocator_.Allocate(*config, 40000.0, AllocationScheme::kSL);
  ASSERT_TRUE(buckets.ok());
  const double eu = cost_model_.EndOfEpochCost(*config, *buckets);
  const PeakLoadResult result = EnforcePeakLoad(
      cost_model_, *config, *buckets, eu * 0.8, PeakLoadMethod::kShrink);
  double before = 0.0, after = 0.0;
  for (int i = 0; i < config->num_nodes(); ++i) {
    const double h = config->node(i).attrs.Count() + 1;
    before += (*buckets)[i] * h;
    after += result.buckets[i] * h;
  }
  EXPECT_LT(after, before);
}

TEST_F(PeakLoadTest, ShiftWithoutPhantomsFallsBackToShrink) {
  auto config = Configuration::Parse(schema_, "AB BC BD CD");
  ASSERT_TRUE(config.ok());
  auto buckets = allocator_.Allocate(*config, 40000.0, AllocationScheme::kSL);
  ASSERT_TRUE(buckets.ok());
  const double eu = cost_model_.EndOfEpochCost(*config, *buckets);
  const PeakLoadResult result = EnforcePeakLoad(
      cost_model_, *config, *buckets, eu * 0.9, PeakLoadMethod::kShift);
  EXPECT_TRUE(result.satisfied);
}

TEST_F(PeakLoadTest, ImpossibleConstraintReportsUnsatisfied) {
  auto config = Configuration::Parse(schema_, "ABCD(AB BCD(BC BD CD))");
  ASSERT_TRUE(config.ok());
  auto buckets = allocator_.Allocate(*config, 40000.0, AllocationScheme::kSL);
  ASSERT_TRUE(buckets.ok());
  const PeakLoadResult result = EnforcePeakLoad(
      cost_model_, *config, *buckets, /*peak_limit=*/1.0,
      PeakLoadMethod::kShrink);
  EXPECT_FALSE(result.satisfied);
}

TEST_F(PeakLoadTest, MildShiftCheaperThanMildShrink) {
  // Paper Figure 15: when E_p is close to E_u, shifting a little space from
  // queries to phantoms preserves a better allocation than shrinking all
  // tables.
  auto config = Configuration::Parse(schema_, "ABCD(AB BCD(BC BD CD))");
  ASSERT_TRUE(config.ok());
  auto buckets = allocator_.Allocate(*config, 40000.0, AllocationScheme::kSL);
  ASSERT_TRUE(buckets.ok());
  const double eu = cost_model_.EndOfEpochCost(*config, *buckets);
  const PeakLoadResult shift = EnforcePeakLoad(
      cost_model_, *config, *buckets, eu * 0.96, PeakLoadMethod::kShift);
  const PeakLoadResult shrink = EnforcePeakLoad(
      cost_model_, *config, *buckets, eu * 0.96, PeakLoadMethod::kShrink);
  ASSERT_TRUE(shift.satisfied);
  ASSERT_TRUE(shrink.satisfied);
  EXPECT_LE(shift.per_record_cost, shrink.per_record_cost * 1.02);
}

}  // namespace
}  // namespace streamagg
