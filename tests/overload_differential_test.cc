// Overload differential harness (docs/overload.md): an enabled-but-idle
// overload controller must be invisible — epoch-for-epoch bit-identical
// results AND counters against the same engine without the controller, on
// every producer x shard split of the acceptance matrix. With a forced shed
// floor the drop counts must be exact (error diffusion, no RNG), the
// reported shed fraction must equal the actual dropped-record count, and a
// mid-run ingest-layout swap must never change answers.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "core/engine.h"
#include "dsms/overload_controller.h"
#include "dsms/reference_aggregator.h"
#include "dsms/sharded_runtime.h"
#include "obs/telemetry.h"
#include "stream/zipf_generator.h"

namespace streamagg {
namespace {

/// Base seed for the randomized workloads; override with
/// STREAMAGG_DIFF_SEED=<n> to explore other draws (CI runs three — the
/// invariants here hold for every draw, not just the defaults).
uint64_t HarnessSeed() {
  if (const char* env = std::getenv("STREAMAGG_DIFF_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 4242;
}

Trace ZipfTrace(uint64_t seed) {
  const Schema schema = *Schema::Default(4);
  auto universe = GroupUniverse::Uniform(schema, 800, {60, 60, 60, 60}, seed);
  auto gen =
      std::move(ZipfGenerator::Make(std::move(*universe), 1.0, seed + 1))
          .value();
  return Trace::Generate(*gen, 60000, 12.0);
}

std::vector<QueryDef> TwoQueries(const Schema& schema) {
  return {QueryDef(*schema.ParseAttributeSet("AB")),
          QueryDef(*schema.ParseAttributeSet("CD"))};
}

StreamAggEngine::Options BaseOptions(int producers, int shards) {
  StreamAggEngine::Options options;
  options.memory_words = 30000.0;
  options.sample_size = 10000;
  options.epoch_seconds = 2.0;
  options.clustered = false;
  options.num_producers = producers;
  options.num_shards = shards;
  return options;
}

/// The acceptance matrix: P x S in {1,2} x {1,4}.
struct Split {
  int producers;
  int shards;
};
constexpr Split kSplits[] = {{1, 1}, {1, 4}, {2, 1}, {2, 4}};

/// Feeds `trace` through a fresh engine and returns it finished.
std::unique_ptr<StreamAggEngine> RunEngine(
    const Trace& trace, const std::vector<QueryDef>& queries,
    const StreamAggEngine::Options& options) {
  auto engine =
      StreamAggEngine::FromQueryDefs(trace.schema(), queries, options);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  if (!engine.ok()) return nullptr;
  for (const Record& r : trace.records()) {
    const Status status = (*engine)->Process(r);
    EXPECT_TRUE(status.ok()) << status.ToString();
    if (!status.ok()) return nullptr;
  }
  EXPECT_TRUE((*engine)->Finish().ok());
  return std::move(*engine);
}

/// Asserts every epoch of every query matches the serial reference
/// aggregation exactly (count-for-count, group-for-group).
void ExpectMatchesReference(const StreamAggEngine& engine, const Trace& trace,
                            const std::vector<QueryDef>& queries,
                            double epoch_seconds) {
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const auto expected = ComputeReferenceAggregate(
        trace, queries[qi].group_by, epoch_seconds);
    const std::vector<uint64_t> epochs =
        engine.Epochs(static_cast<int>(qi));
    ASSERT_EQ(epochs.size(), expected.size()) << "query " << qi;
    for (const auto& [epoch, groups] : expected) {
      const EpochAggregate& actual =
          engine.EpochResult(static_cast<int>(qi), epoch);
      ASSERT_EQ(actual.size(), groups.size())
          << "query " << qi << " epoch " << epoch;
      for (const auto& [key, state] : groups) {
        auto it = actual.find(key);
        ASSERT_NE(it, actual.end()) << "query " << qi << " epoch " << epoch
                                    << " missing " << key.ToString();
        EXPECT_EQ(it->second.count, state.count)
            << "query " << qi << " epoch " << epoch << " " << key.ToString();
      }
    }
  }
}

TEST(OverloadDifferentialTest, IdleControllerIsBitIdenticalOnAllSplits) {
  // Watermarks set astronomically high and a zero shed floor: the
  // controller runs its whole epoch-boundary loop (pressure judging, plan
  // rebuilds, telemetry annotation) yet must never shed — results AND
  // operation counters stay bit-identical to an engine without it.
  // Rebalancing is off so the routing path is byte-for-byte the baseline's
  // (the slot map engages only under overload.rebalance).
  const Trace trace = ZipfTrace(HarnessSeed() + 0x0d1);
  const std::vector<QueryDef> queries = TwoQueries(trace.schema());

  for (const Split& split : kSplits) {
    SCOPED_TRACE("producers=" + std::to_string(split.producers) +
                 " shards=" + std::to_string(split.shards));
    const StreamAggEngine::Options baseline =
        BaseOptions(split.producers, split.shards);
    StreamAggEngine::Options overload = baseline;
    overload.overload.enabled = true;
    overload.overload.queue_blocked_fraction = 1e9;  // Never reachable.
    overload.overload.epoch_gap_watermark_ns = 0;    // Signal disabled.
    overload.overload.min_shed_fraction = 0.0;
    overload.overload.rebalance = false;

    auto a = RunEngine(trace, queries, baseline);
    auto b = RunEngine(trace, queries, overload);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);

    ExpectMatchesReference(*a, trace, queries, 2.0);
    ExpectMatchesReference(*b, trace, queries, 2.0);
    EXPECT_TRUE(a->counters() == b->counters());
    EXPECT_EQ(b->counters().shed_probes, 0u);

    // The controller is on the record even when idle: the telemetry section
    // is present (enabled) with a zero realized fraction.
    const TelemetrySnapshot snapshot = b->telemetry();
    EXPECT_TRUE(snapshot.shedding.enabled);
    EXPECT_EQ(snapshot.shedding.shed_probes, 0u);
    EXPECT_DOUBLE_EQ(snapshot.shedding.shed_fraction, 0.0);
    EXPECT_FALSE(a->telemetry().shedding.enabled);
  }
}

TEST(OverloadDifferentialTest, ShedFloorDropsExactlyOnSerialEngine) {
  // min_shed_fraction = 0.5 (the engine_monitor --overload 2 floor) on the
  // serial path: every raw relation's error-diffusion accumulator drops
  // exactly floor(records / 2) probes, the raw tables' probes + drops close
  // to the record count, and the reported fraction IS the actual count —
  // not an estimate.
  const Trace trace = ZipfTrace(HarnessSeed() + 0x0d2);
  const std::vector<QueryDef> queries = TwoQueries(trace.schema());

  for (const TelemetryLevel level :
       {TelemetryLevel::kCounters, TelemetryLevel::kFull}) {
    SCOPED_TRACE("level=" + std::to_string(static_cast<int>(level)));
    StreamAggEngine::Options options = BaseOptions(1, 1);
    options.telemetry_level = level;
    options.overload.enabled = true;
    options.overload.min_shed_fraction = 0.5;
    auto engine = RunEngine(trace, queries, options);
    ASSERT_NE(engine, nullptr);

    const TelemetrySnapshot snapshot = engine->telemetry();
    const SheddingTelemetry& shedding = snapshot.shedding;
    ASSERT_TRUE(shedding.enabled);
    EXPECT_DOUBLE_EQ(shedding.target_fraction, 0.5);
    const uint64_t offered = shedding.offered_records;
    EXPECT_EQ(offered, trace.size());
    ASSERT_FALSE(shedding.relations.empty());

    uint64_t total_shed = 0;
    for (const SheddingRelationTelemetry& rel : shedding.relations) {
      // Numerator 512/1024 diffuses to exactly every second record.
      EXPECT_EQ(rel.shed_records, offered / 2) << rel.relation;
      EXPECT_DOUBLE_EQ(rel.shed_fraction, 0.5) << rel.relation;
      total_shed += rel.shed_records;
      // The books close at the raw table: offered = probed + shed.
      bool found = false;
      for (const TableTelemetry& table : snapshot.tables) {
        if (table.relation != rel.relation || table.parent >= 0) continue;
        EXPECT_EQ(table.probes + rel.shed_records, offered) << rel.relation;
        found = true;
      }
      EXPECT_TRUE(found) << "no raw table for " << rel.relation;
    }
    EXPECT_EQ(shedding.shed_probes, total_shed);
    EXPECT_EQ(engine->counters().shed_probes, total_shed);
    EXPECT_DOUBLE_EQ(
        shedding.shed_fraction,
        static_cast<double>(total_shed) /
            (static_cast<double>(offered) *
             static_cast<double>(shedding.relations.size())));

    // The shedding section survives the JSON round trip at both tiers.
    auto parsed = TelemetrySnapshot::FromJsonLine(snapshot.ToJsonLine());
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_TRUE(parsed->shedding == shedding);
  }
}

TEST(OverloadDifferentialTest, SustainedOverloadShedsAndAccountsExactly) {
  // The 2x-overload degradation scenario: small bounded queues, a 2x shed
  // floor, the full P x S matrix engaged. The engine must run to completion
  // (producers shed at the probe, they are never wedged), and the reported
  // shed fraction must match the actual dropped-record count exactly, with
  // the per-relation drops summing to the engine counter across shards.
  const Trace trace = ZipfTrace(HarnessSeed() + 0x0d3);
  const std::vector<QueryDef> queries = TwoQueries(trace.schema());

  StreamAggEngine::Options options = BaseOptions(2, 4);
  options.shard_queue_capacity = 64;
  options.telemetry_level = TelemetryLevel::kCounters;
  options.overload.enabled = true;
  options.overload.min_shed_fraction = 0.5;  // --overload 2: 1 - 1/2.
  options.overload.queue_blocked_fraction = 0.02;
  auto engine = RunEngine(trace, queries, options);
  ASSERT_NE(engine, nullptr);
  EXPECT_EQ(engine->counters().records, trace.size());

  const SheddingTelemetry& shedding = engine->telemetry().shedding;
  ASSERT_TRUE(shedding.enabled);
  EXPECT_GT(shedding.shed_probes, 0u);
  EXPECT_GT(shedding.shed_fraction, 0.0);
  uint64_t total_shed = 0;
  for (const SheddingRelationTelemetry& rel : shedding.relations) {
    total_shed += rel.shed_records;
  }
  EXPECT_EQ(shedding.shed_probes, total_shed);
  EXPECT_EQ(engine->counters().shed_probes, total_shed);
  EXPECT_DOUBLE_EQ(
      shedding.shed_fraction,
      static_cast<double>(total_shed) /
          (static_cast<double>(shedding.offered_records) *
           static_cast<double>(shedding.relations.size())));
  // At a sustained 2x floor essentially half of every relation's probes
  // shed — each shard's accumulator floors independently, so the realized
  // fraction sits within one record per shard of 0.5.
  EXPECT_GT(shedding.shed_fraction, 0.499);
  EXPECT_LE(shedding.shed_fraction, 0.5);
}

TEST(OverloadDifferentialTest, MidRunIngestRemapKeepsResultsExact) {
  // An ingest-layout swap at a Quiesce barrier — new slot map AND skewed
  // stripe weights, mid-epoch — must never change answers: HFTA merge is
  // per (query, epoch, group), so a group whose slot moved simply
  // accumulates partial states on two shards.
  const Trace trace = ZipfTrace(HarnessSeed() + 0x0d4);
  const Schema& schema = trace.schema();
  auto config = Configuration::Parse(schema, "ABCD(AB BCD(BC BD CD))");
  ASSERT_TRUE(config.ok());
  auto specs = config->ToRuntimeSpecs(
      std::vector<double>(config->num_nodes(), 128.0));
  ASSERT_TRUE(specs.ok());

  ShardedRuntime::Options options;
  options.num_shards = 4;
  options.num_producers = 2;
  options.rebalance_slots_per_shard = 4;
  auto sharded = ShardedRuntime::Make(schema, *specs, 3.0, options);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  ASSERT_EQ((*sharded)->num_slots(), 16);

  const std::span<const Record> records(trace.records());
  const size_t half = records.size() / 2;
  (*sharded)->ProcessBatch(records.subspan(0, half));
  (*sharded)->Quiesce();

  // Rotate every slot one shard over and skew the stripes 1:3.
  std::vector<int> remap((*sharded)->slot_shards());
  for (int& shard : remap) shard = (shard + 1) % options.num_shards;
  ASSERT_TRUE((*sharded)->ApplyIngestLayout(remap, {0.5, 1.5}).ok());

  (*sharded)->ProcessBatch(records.subspan(half));
  (*sharded)->FlushEpoch();

  const std::vector<QueryDef> queries = config->QueryDefs();
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const auto expected = ComputeReferenceAggregate(
        trace, queries[qi].group_by, 3.0, queries[qi].metrics);
    std::string diagnostic;
    EXPECT_TRUE(AggregatesEqual(expected, (*sharded)->hfta(),
                                static_cast<int>(qi), &diagnostic))
        << "query " << qi << ": " << diagnostic;
  }
  EXPECT_EQ((*sharded)->counters().records, trace.size());
}

}  // namespace
}  // namespace streamagg
