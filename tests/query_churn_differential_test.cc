// Query-churn differential harness (docs/query_frontend.md §4): an engine
// whose query set changes mid-stream (AddQuery/DropQuery at arbitrary
// record positions) must stay epoch-for-epoch bit-identical to the serial
// reference aggregation computed over each query's own lifetime window —
// the sub-trace from the record where it was added to the record where it
// was dropped. Runs seeded random add/drop schedules over every producer x
// shard split of the acceptance matrix, including schedules interleaved
// with adaptive re-plans and an engaged overload controller.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "core/engine.h"
#include "dsms/reference_aggregator.h"
#include "stream/zipf_generator.h"

namespace streamagg {
namespace {

/// Base seed for the randomized schedules; override with
/// STREAMAGG_DIFF_SEED=<n> to explore other draws (CI runs three — the
/// invariants here hold for every draw, not just the defaults).
uint64_t HarnessSeed() {
  if (const char* env = std::getenv("STREAMAGG_DIFF_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 4242;
}

Trace ZipfTrace(uint64_t seed) {
  const Schema schema = *Schema::Default(4);
  auto universe = GroupUniverse::Uniform(schema, 800, {60, 60, 60, 60}, seed);
  auto gen =
      std::move(ZipfGenerator::Make(std::move(*universe), 1.0, seed + 1))
          .value();
  return Trace::Generate(*gen, 60000, 12.0);
}

StreamAggEngine::Options BaseOptions(int producers, int shards) {
  StreamAggEngine::Options options;
  options.memory_words = 30000.0;
  options.sample_size = 10000;
  options.epoch_seconds = 2.0;
  options.clustered = false;
  options.num_producers = producers;
  options.num_shards = shards;
  return options;
}

/// The acceptance matrix: P x S in {1,2} x {1,4}.
struct Split {
  int producers;
  int shards;
};
constexpr Split kSplits[] = {{1, 1}, {1, 4}, {2, 1}, {2, 4}};

/// The records of `trace` in [begin, end), as a replayable trace (epoch
/// boundaries stay aligned: references use absolute timestamps).
Trace SubTrace(const Trace& trace, size_t begin, size_t end) {
  Trace sub(trace.schema());
  sub.Reserve(end - begin);
  for (size_t i = begin; i < end; ++i) sub.Append(trace.record(i));
  sub.set_duration_seconds(trace.duration_seconds());
  return sub;
}

/// One query id's lifetime: the record index where it joined and the index
/// where it was dropped (trace end when it survived).
struct Window {
  QueryDef def;
  size_t begin = 0;
  size_t end = 0;
};

/// Asserts query id `id` holds exactly the reference aggregation of its
/// lifetime window — every epoch, every group, count AND metric states.
void ExpectWindowMatches(const StreamAggEngine& engine, const Trace& trace,
                         int id, const Window& window, double epoch_seconds) {
  const Trace sub = SubTrace(trace, window.begin, window.end);
  const auto expected = ComputeReferenceAggregate(
      sub, window.def.group_by, epoch_seconds, window.def.metrics);
  const std::vector<uint64_t> epochs = engine.Epochs(id);
  ASSERT_EQ(epochs.size(), expected.size())
      << "query id " << id << " window [" << window.begin << ", "
      << window.end << ")";
  for (const auto& [epoch, groups] : expected) {
    const EpochAggregate& actual = engine.EpochResult(id, epoch);
    ASSERT_EQ(actual.size(), groups.size())
        << "query id " << id << " epoch " << epoch;
    for (const auto& [key, state] : groups) {
      auto it = actual.find(key);
      ASSERT_NE(it, actual.end()) << "query id " << id << " epoch " << epoch
                                  << " missing " << key.ToString();
      EXPECT_TRUE(it->second == state)
          << "query id " << id << " epoch " << epoch << " " << key.ToString()
          << ": " << it->second.ToString() << " != " << state.ToString();
    }
  }
}

/// Feeds `trace` through `engine` while executing a seeded random churn
/// schedule: `churn_points` add/drop actions at sorted record indices in
/// [first_churn_index, size - 1000), never dropping below two live queries
/// and only adding group-bys not currently live (alias semantics get their
/// own test). Fills `windows` with the lifetime window per query id.
void RunChurnSchedule(StreamAggEngine* engine, const Trace& trace,
                      const std::vector<QueryDef>& initial, uint64_t seed,
                      int churn_points, size_t first_churn_index,
                      std::map<int, Window>* windows) {
  const Schema& schema = trace.schema();
  std::mt19937_64 rng(seed);
  const std::vector<std::string> pool = {"A",   "B",   "C",   "D",   "AC",
                                         "AD",  "BC",  "BD",  "ABC", "ABD",
                                         "ACD", "BCD", "ABCD"};
  const std::vector<std::vector<MetricSpec>> metric_pool = {
      {},
      {{AggregateOp::kSum, 0}},
      {{AggregateOp::kMin, 1}, {AggregateOp::kMax, 2}},
  };

  for (size_t i = 0; i < initial.size(); ++i) {
    (*windows)[static_cast<int>(i)] = Window{initial[i], 0, trace.size()};
  }

  std::vector<size_t> points;
  std::uniform_int_distribution<size_t> at(first_churn_index,
                                           trace.size() - 1000);
  for (int i = 0; i < churn_points; ++i) points.push_back(at(rng));
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end()), points.end());

  size_t next_point = 0;
  for (size_t i = 0; i < trace.size(); ++i) {
    while (next_point < points.size() && points[next_point] == i) {
      ++next_point;
      std::vector<int> live;
      for (const auto& [id, w] : *windows) {
        if (engine->IsLive(id)) live.push_back(id);
      }
      const bool add = live.size() < 2 || (rng() & 1) == 0;
      if (add) {
        // Draw a group-by no live query holds (distinct sets only — the
        // alias path is covered by AliasAddAndDropKeepSlotExact).
        QueryDef def;
        for (int tries = 0; tries < 64 && def.group_by.empty(); ++tries) {
          AttributeSet set =
              *schema.ParseAttributeSet(pool[rng() % pool.size()]);
          bool taken = false;
          for (int id : live) {
            if ((*windows)[id].def.group_by == set) taken = true;
          }
          if (!taken) {
            def = QueryDef(set, metric_pool[rng() % metric_pool.size()]);
          }
        }
        if (def.group_by.empty()) continue;
        auto id = engine->AddQuery(def);
        ASSERT_TRUE(id.ok()) << id.status().ToString();
        (*windows)[*id] = Window{def, i, trace.size()};
      } else {
        const int victim = live[rng() % live.size()];
        const Status dropped = engine->DropQuery(victim);
        ASSERT_TRUE(dropped.ok()) << dropped.ToString();
        (*windows)[victim].end = i;
      }
    }
    const Status status = engine->Process(trace.record(i));
    ASSERT_TRUE(status.ok()) << status.ToString();
  }
  const Status finished = engine->Finish();
  ASSERT_TRUE(finished.ok()) << finished.ToString();
}

TEST(QueryChurnDifferentialTest, RandomScheduleBitIdenticalOnAllSplits) {
  const Trace trace = ZipfTrace(HarnessSeed() + 0x0c1);
  const Schema& schema = trace.schema();
  const std::vector<QueryDef> initial = {
      QueryDef(*schema.ParseAttributeSet("AB")),
      QueryDef(*schema.ParseAttributeSet("CD"))};

  for (const Split& split : kSplits) {
    SCOPED_TRACE("producers=" + std::to_string(split.producers) +
                 " shards=" + std::to_string(split.shards));
    auto engine = StreamAggEngine::FromQueryDefs(
        schema, initial, BaseOptions(split.producers, split.shards));
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();

    std::map<int, Window> windows;
    RunChurnSchedule(&**engine, trace, initial,
                     HarnessSeed() + 31 * split.producers + split.shards,
                     /*churn_points=*/8, /*first_churn_index=*/12000, &windows);
    if (::testing::Test::HasFatalFailure()) return;

    for (const auto& [id, window] : windows) {
      ExpectWindowMatches(**engine, trace, id, window, 2.0);
    }
    // Every churn action is on the record, oldest first.
    EXPECT_EQ((*engine)->churn_events().size(),
              windows.size() - initial.size() +
                  static_cast<size_t>(std::count_if(
                      windows.begin(), windows.end(), [&](const auto& w) {
                        return w.second.end != trace.size();
                      })));
  }
}

TEST(QueryChurnDifferentialTest, ChurnInterleavedWithAdaptiveReplans) {
  // The same invariant with drift-triggered re-planning live: adaptive
  // swaps between (and around) churn points must not disturb any query's
  // lifetime window.
  const Trace trace = ZipfTrace(HarnessSeed() + 0x0c2);
  const Schema& schema = trace.schema();
  const std::vector<QueryDef> initial = {
      QueryDef(*schema.ParseAttributeSet("AB")),
      QueryDef(*schema.ParseAttributeSet("CD"))};

  for (const Split& split : kSplits) {
    SCOPED_TRACE("producers=" + std::to_string(split.producers) +
                 " shards=" + std::to_string(split.shards));
    StreamAggEngine::Options options =
        BaseOptions(split.producers, split.shards);
    options.adaptive = true;
    options.adaptive_options.trend_epochs = 2;
    options.adaptive_options.deviation_threshold = 0.05;
    options.adaptive_options.absolute_floor = 0.01;
    options.adaptive_options.min_probes_per_table = 100;
    auto engine = StreamAggEngine::FromQueryDefs(schema, initial, options);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();

    std::map<int, Window> windows;
    RunChurnSchedule(&**engine, trace, initial, HarnessSeed() + 0x0c2a,
                     /*churn_points=*/6, /*first_churn_index=*/12000,
                     &windows);
    if (::testing::Test::HasFatalFailure()) return;

    for (const auto& [id, window] : windows) {
      ExpectWindowMatches(**engine, trace, id, window, 2.0);
    }
  }
}

TEST(QueryChurnDifferentialTest, ChurnWithIdleOverloadControllerIsExact) {
  // Churn with the overload controller engaged but never shedding
  // (unreachable watermarks, zero floor): the controller re-prices its
  // plan at every churn swap yet results must stay exact.
  const Trace trace = ZipfTrace(HarnessSeed() + 0x0c3);
  const Schema& schema = trace.schema();
  const std::vector<QueryDef> initial = {
      QueryDef(*schema.ParseAttributeSet("AB")),
      QueryDef(*schema.ParseAttributeSet("CD"))};

  StreamAggEngine::Options options = BaseOptions(2, 4);
  options.overload.enabled = true;
  options.overload.queue_blocked_fraction = 1e9;  // Never reachable.
  options.overload.epoch_gap_watermark_ns = 0;    // Signal disabled.
  options.overload.min_shed_fraction = 0.0;
  options.overload.rebalance = false;
  auto engine = StreamAggEngine::FromQueryDefs(schema, initial, options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  std::map<int, Window> windows;
  RunChurnSchedule(&**engine, trace, initial, HarnessSeed() + 0x0c3a,
                   /*churn_points=*/6, /*first_churn_index=*/12000, &windows);
  if (::testing::Test::HasFatalFailure()) return;

  for (const auto& [id, window] : windows) {
    ExpectWindowMatches(**engine, trace, id, window, 2.0);
  }
  EXPECT_EQ((*engine)->counters().shed_probes, 0u);
}

TEST(QueryChurnDifferentialTest, ChurnUnderActiveShedPlanRunsToCompletion) {
  // With a forced shed floor results are deliberately lossy, so the
  // differential becomes an accounting check: the engine survives churn
  // under an active shed plan, every record is offered, the shed books
  // close exactly, and dropped queries keep serving their archive.
  const Trace trace = ZipfTrace(HarnessSeed() + 0x0c4);
  const Schema& schema = trace.schema();
  const std::vector<QueryDef> initial = {
      QueryDef(*schema.ParseAttributeSet("AB")),
      QueryDef(*schema.ParseAttributeSet("CD"))};

  StreamAggEngine::Options options = BaseOptions(2, 4);
  options.telemetry_level = TelemetryLevel::kCounters;
  options.overload.enabled = true;
  options.overload.min_shed_fraction = 0.5;
  auto engine = StreamAggEngine::FromQueryDefs(schema, initial, options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  std::map<int, Window> windows;
  RunChurnSchedule(&**engine, trace, initial, HarnessSeed() + 0x0c4a,
                   /*churn_points=*/6, /*first_churn_index=*/12000, &windows);
  if (::testing::Test::HasFatalFailure()) return;

  EXPECT_EQ((*engine)->counters().records, trace.size());
  const SheddingTelemetry& shedding = (*engine)->telemetry().shedding;
  ASSERT_TRUE(shedding.enabled);
  // With a 0.5 shed floor the plan actually dropped probes, and the
  // lifetime tallies agree between counters and telemetry. Per-relation
  // counts are live-runtime-scoped (they reset at every churn swap), so
  // their sum only bounds the lifetime total from below.
  EXPECT_GT(shedding.shed_probes, 0u);
  EXPECT_EQ(shedding.shed_probes, (*engine)->counters().shed_probes);
  uint64_t live_runtime_shed = 0;
  for (const SheddingRelationTelemetry& rel : shedding.relations) {
    live_runtime_shed += rel.shed_records;
  }
  EXPECT_LE(live_runtime_shed, shedding.shed_probes);
  for (const auto& [id, window] : windows) {
    if (window.end == trace.size()) continue;
    EXPECT_FALSE((*engine)->IsLive(id));
    // The archive answers reads even though the slot is gone.
    (void)(*engine)->Epochs(id);
  }
}

TEST(QueryChurnDifferentialTest, AliasAddAndDropKeepSlotExact) {
  // Adding a query whose (group-by, metrics) matches a live one aliases
  // its dense slot: zero plan change, shared results. Dropping the alias
  // archives the slot's state up to the drop; the original keeps
  // accumulating to the end, still exact.
  const Trace trace = ZipfTrace(HarnessSeed() + 0x0c5);
  const Schema& schema = trace.schema();
  const std::vector<QueryDef> initial = {
      QueryDef(*schema.ParseAttributeSet("AB")),
      QueryDef(*schema.ParseAttributeSet("CD"))};

  auto engine =
      StreamAggEngine::FromQueryDefs(schema, initial, BaseOptions(1, 1));
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  const size_t alias_at = 20000;
  const size_t drop_at = 40000;
  int alias_id = -1;
  for (size_t i = 0; i < trace.size(); ++i) {
    if (i == alias_at) {
      auto added = (*engine)->AddQuery(QueryDef(initial[0].group_by));
      ASSERT_TRUE(added.ok()) << added.status().ToString();
      alias_id = *added;
      ASSERT_EQ((*engine)->num_queries(), 2);  // No new dense slot.
      ASSERT_TRUE((*engine)->churn_events().back().aliased);
    }
    if (i == drop_at) {
      ASSERT_TRUE((*engine)->DropQuery(alias_id).ok());
      EXPECT_FALSE((*engine)->IsLive(alias_id));
      EXPECT_TRUE((*engine)->IsLive(0));
    }
    ASSERT_TRUE((*engine)->Process(trace.record(i)).ok());
  }
  ASSERT_TRUE((*engine)->Finish().ok());

  // The alias shared slot 0's accumulation, which began at record 0 — its
  // archive is the slot's state at the drop, i.e. the [0, drop_at) window.
  ExpectWindowMatches(**engine, trace, alias_id,
                      Window{initial[0], 0, drop_at}, 2.0);
  // The original is untouched by the alias lifecycle.
  ExpectWindowMatches(**engine, trace, 0, Window{initial[0], 0, trace.size()},
                      2.0);
  ExpectWindowMatches(**engine, trace, 1, Window{initial[1], 0, trace.size()},
                      2.0);
}

TEST(QueryChurnDifferentialTest, SamplingPhaseChurnJoinsInitialPlan) {
  // Churn before the plan exists is structural: an added query joins the
  // initial optimization and sees the whole buffered sample on replay, so
  // its window starts at record 0 even when added later.
  const Trace trace = ZipfTrace(HarnessSeed() + 0x0c6);
  const Schema& schema = trace.schema();
  const std::vector<QueryDef> initial = {
      QueryDef(*schema.ParseAttributeSet("AB")),
      QueryDef(*schema.ParseAttributeSet("CD"))};

  auto engine =
      StreamAggEngine::FromQueryDefs(schema, initial, BaseOptions(1, 1));
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  const QueryDef added(*schema.ParseAttributeSet("BC"),
                       {{AggregateOp::kSum, 3}});
  int added_id = -1;
  int dropped_id = -1;
  for (size_t i = 0; i < trace.size(); ++i) {
    if (i == 2000) {  // Mid-sample: the buffer replays through the plan.
      auto id = (*engine)->AddQuery(added);
      ASSERT_TRUE(id.ok()) << id.status().ToString();
      added_id = *id;
      auto doomed = (*engine)->AddQuery(QueryDef(*schema.ParseAttributeSet("AD")));
      ASSERT_TRUE(doomed.ok());
      dropped_id = *doomed;
    }
    if (i == 4000) {  // Still sampling: a pure structural removal.
      ASSERT_TRUE((*engine)->DropQuery(dropped_id).ok());
      EXPECT_FALSE((*engine)->planned());
    }
    ASSERT_TRUE((*engine)->Process(trace.record(i)).ok());
  }
  ASSERT_TRUE((*engine)->Finish().ok());

  ExpectWindowMatches(**engine, trace, added_id,
                      Window{added, 0, trace.size()}, 2.0);
  // Dropped while sampling: nothing had flowed into any runtime yet, so
  // the archive is empty but the id keeps answering.
  EXPECT_TRUE((*engine)->Epochs(dropped_id).empty());
  for (size_t qi = 0; qi < initial.size(); ++qi) {
    ExpectWindowMatches(**engine, trace, static_cast<int>(qi),
                        Window{initial[qi], 0, trace.size()}, 2.0);
  }
}

TEST(QueryChurnDifferentialTest, DroppedQueryGroupsStopAccumulating) {
  // The Hfta::Add target-cache regression (docs/query_frontend.md §5): a
  // dropped query's archive must be frozen at the drop — identical before
  // and after the remainder of the stream flows.
  const Trace trace = ZipfTrace(HarnessSeed() + 0x0c7);
  const Schema& schema = trace.schema();
  const std::vector<QueryDef> initial = {
      QueryDef(*schema.ParseAttributeSet("AB")),
      QueryDef(*schema.ParseAttributeSet("CD"))};

  auto engine =
      StreamAggEngine::FromQueryDefs(schema, initial, BaseOptions(1, 1));
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  const size_t drop_at = 30000;
  std::map<uint64_t, uint64_t> at_drop;  // epoch -> total count.
  for (size_t i = 0; i < trace.size(); ++i) {
    if (i == drop_at) {
      ASSERT_TRUE((*engine)->DropQuery(0).ok());
      for (uint64_t e : (*engine)->Epochs(0)) {
        uint64_t total = 0;
        for (const auto& [key, state] : (*engine)->EpochResult(0, e)) {
          total += state.count;
        }
        at_drop[e] = total;
      }
    }
    ASSERT_TRUE((*engine)->Process(trace.record(i)).ok());
  }
  ASSERT_TRUE((*engine)->Finish().ok());

  std::map<uint64_t, uint64_t> at_end;
  for (uint64_t e : (*engine)->Epochs(0)) {
    uint64_t total = 0;
    for (const auto& [key, state] : (*engine)->EpochResult(0, e)) {
      total += state.count;
    }
    at_end[e] = total;
  }
  EXPECT_EQ(at_drop, at_end);
  ExpectWindowMatches(**engine, trace, 0, Window{initial[0], 0, drop_at}, 2.0);
  ExpectWindowMatches(**engine, trace, 1,
                      Window{initial[1], 0, trace.size()}, 2.0);
}

}  // namespace
}  // namespace streamagg
