#include "stream/aggregate.h"

#include <gtest/gtest.h>

namespace streamagg {
namespace {

Record MakeRecord(std::initializer_list<uint32_t> values) {
  Record r;
  int i = 0;
  for (uint32_t v : values) r.values[i++] = v;
  return r;
}

const std::vector<MetricSpec> kSumMinMax = {
    MetricSpec{AggregateOp::kSum, 2},
    MetricSpec{AggregateOp::kMin, 2},
    MetricSpec{AggregateOp::kMax, 2},
};

TEST(AggregateStateTest, FromRecordCapturesValues) {
  const Record r = MakeRecord({1, 2, 77});
  const AggregateState s = AggregateState::FromRecord(r, kSumMinMax);
  EXPECT_EQ(s.count, 1u);
  ASSERT_EQ(s.num_metrics, 3);
  EXPECT_EQ(s.metrics[0], 77u);
  EXPECT_EQ(s.metrics[1], 77u);
  EXPECT_EQ(s.metrics[2], 77u);
}

TEST(AggregateStateTest, FromCountHasNoMetrics) {
  const AggregateState s = AggregateState::FromCount(9);
  EXPECT_EQ(s.count, 9u);
  EXPECT_EQ(s.num_metrics, 0);
}

TEST(AggregateStateTest, MergeFollowsOps) {
  AggregateState a =
      AggregateState::FromRecord(MakeRecord({0, 0, 10}), kSumMinMax);
  const AggregateState b =
      AggregateState::FromRecord(MakeRecord({0, 0, 4}), kSumMinMax);
  a.Merge(b, kSumMinMax);
  EXPECT_EQ(a.count, 2u);
  EXPECT_EQ(a.metrics[0], 14u);  // sum
  EXPECT_EQ(a.metrics[1], 4u);   // min
  EXPECT_EQ(a.metrics[2], 10u);  // max
}

TEST(AggregateStateTest, MergeIsAssociative) {
  // (a + b) + c == a + (b + c) — the property that makes LFTA eviction
  // cascades correct for these functions.
  const AggregateState a =
      AggregateState::FromRecord(MakeRecord({0, 0, 5}), kSumMinMax);
  const AggregateState b =
      AggregateState::FromRecord(MakeRecord({0, 0, 11}), kSumMinMax);
  const AggregateState c =
      AggregateState::FromRecord(MakeRecord({0, 0, 2}), kSumMinMax);
  AggregateState left = a;
  left.Merge(b, kSumMinMax);
  left.Merge(c, kSumMinMax);
  AggregateState bc = b;
  bc.Merge(c, kSumMinMax);
  AggregateState right = a;
  right.Merge(bc, kSumMinMax);
  EXPECT_TRUE(left == right);
}

TEST(AggregateStateTest, ProjectNarrowsToSublist) {
  const AggregateState full =
      AggregateState::FromRecord(MakeRecord({0, 0, 33}), kSumMinMax);
  const std::vector<MetricSpec> only_min = {MetricSpec{AggregateOp::kMin, 2}};
  const AggregateState narrowed = full.Project(kSumMinMax, only_min);
  EXPECT_EQ(narrowed.count, 1u);
  ASSERT_EQ(narrowed.num_metrics, 1);
  EXPECT_EQ(narrowed.metrics[0], 33u);
  // Projecting to the empty list keeps only the count.
  const AggregateState bare = full.Project(kSumMinMax, {});
  EXPECT_EQ(bare.count, 1u);
  EXPECT_EQ(bare.num_metrics, 0);
}

TEST(UnionMetricsTest, DeduplicatesAndSorts) {
  const std::vector<MetricSpec> a = {MetricSpec{AggregateOp::kMax, 3},
                                     MetricSpec{AggregateOp::kSum, 2}};
  const std::vector<MetricSpec> b = {MetricSpec{AggregateOp::kSum, 2},
                                     MetricSpec{AggregateOp::kMin, 1}};
  auto u = UnionMetrics(a, b);
  ASSERT_TRUE(u.ok());
  ASSERT_EQ(u->size(), 3u);
  EXPECT_TRUE(std::is_sorted(u->begin(), u->end()));
}

TEST(UnionMetricsTest, RejectsOverflow) {
  std::vector<MetricSpec> a, b;
  for (int i = 0; i < 3; ++i) a.push_back(MetricSpec{AggregateOp::kSum, uint8_t(i)});
  for (int i = 3; i < 6; ++i) b.push_back(MetricSpec{AggregateOp::kSum, uint8_t(i)});
  EXPECT_FALSE(UnionMetrics(a, b).ok());
}

TEST(MetricsSubsetTest, Works) {
  const std::vector<MetricSpec> big = kSumMinMax;
  const std::vector<MetricSpec> small = {MetricSpec{AggregateOp::kMin, 2}};
  EXPECT_TRUE(MetricsSubset(small, big));
  EXPECT_TRUE(MetricsSubset({}, big));
  EXPECT_FALSE(MetricsSubset(big, small));
  EXPECT_FALSE(
      MetricsSubset({MetricSpec{AggregateOp::kMin, 3}}, big));
}

TEST(AggregateOpTest, Names) {
  EXPECT_STREQ(AggregateOpName(AggregateOp::kSum), "sum");
  EXPECT_STREQ(AggregateOpName(AggregateOp::kMin), "min");
  EXPECT_STREQ(AggregateOpName(AggregateOp::kMax), "max");
}

TEST(AggregateStateTest, ToStringIsReadable) {
  AggregateState s = AggregateState::FromCount(3);
  EXPECT_EQ(s.ToString(), "count=3");
  const AggregateState with =
      AggregateState::FromRecord(MakeRecord({0, 0, 7}),
                                 {MetricSpec{AggregateOp::kSum, 2}});
  EXPECT_EQ(with.ToString(), "count=1,m0=7");
}

}  // namespace
}  // namespace streamagg
