#include "stream/distinct_counter.h"

#include <unordered_set>

#include <gtest/gtest.h>

#include "util/random.h"

namespace streamagg {
namespace {

GroupKey Key2(uint32_t a, uint32_t b) {
  GroupKey k;
  k.size = 2;
  k.values[0] = a;
  k.values[1] = b;
  return k;
}

TEST(DistinctCounterTest, EmptyEstimatesZero) {
  DistinctCounter counter(1024);
  EXPECT_EQ(counter.Estimate(), 0u);
  EXPECT_EQ(counter.ZeroBits(), counter.bits());
}

TEST(DistinctCounterTest, RoundsBitmapUp) {
  DistinctCounter tiny(1);
  EXPECT_EQ(tiny.bits(), 64u);
  DistinctCounter odd(100);
  EXPECT_EQ(odd.bits(), 128u);
}

TEST(DistinctCounterTest, DuplicatesDoNotInflate) {
  DistinctCounter counter(4096);
  for (int i = 0; i < 10000; ++i) counter.Add(Key2(7, 9));
  EXPECT_EQ(counter.Estimate(), 1u);
}

class DistinctCounterAccuracy : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DistinctCounterAccuracy, EstimatesWithinFivePercent) {
  const uint64_t true_count = GetParam();
  DistinctCounter counter(1 << 15);  // 32768 bits >> true counts tested.
  Random rng(true_count * 31 + 7);
  std::unordered_set<uint64_t> used;
  while (used.size() < true_count) {
    const uint32_t a = static_cast<uint32_t>(rng.Next64());
    const uint32_t b = static_cast<uint32_t>(rng.Next64());
    if (used.insert((static_cast<uint64_t>(a) << 32) | b).second) {
      counter.Add(Key2(a, b));
      // Repeats must not matter.
      counter.Add(Key2(a, b));
    }
  }
  const double estimate = static_cast<double>(counter.Estimate());
  EXPECT_NEAR(estimate, static_cast<double>(true_count),
              0.05 * static_cast<double>(true_count) + 3.0);
}

INSTANTIATE_TEST_SUITE_P(TrueCounts, DistinctCounterAccuracy,
                         ::testing::Values(10, 100, 552, 1846, 2837, 8000));

TEST(DistinctCounterTest, SaturationIsReportedNotDiverged) {
  DistinctCounter counter(64);
  Random rng(3);
  for (int i = 0; i < 5000; ++i) {
    counter.Add(Key2(static_cast<uint32_t>(rng.Next64()),
                     static_cast<uint32_t>(rng.Next64())));
  }
  EXPECT_EQ(counter.ZeroBits(), 0u);
  EXPECT_EQ(counter.Estimate(), 64u);
}

TEST(DistinctCounterTest, ResetClears) {
  DistinctCounter counter(1024);
  counter.Add(Key2(1, 2));
  EXPECT_GT(counter.Estimate(), 0u);
  counter.Reset();
  EXPECT_EQ(counter.Estimate(), 0u);
}

}  // namespace
}  // namespace streamagg
