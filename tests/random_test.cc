#include "util/random.h"

#include <vector>

#include <gtest/gtest.h>

namespace streamagg {
namespace {

TEST(RandomTest, DeterministicForSameSeed) {
  Random a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next64(), b.Next64());
}

TEST(RandomTest, DifferentSeedsDiverge) {
  Random a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.Next64() != b.Next64()) ++differing;
  }
  EXPECT_GT(differing, 30);
}

TEST(RandomTest, UniformStaysInRange) {
  Random rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.Uniform(1), 0u);
  }
}

TEST(RandomTest, UniformIsRoughlyBalanced) {
  Random rng(99);
  std::vector<int> histogram(10, 0);
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++histogram[rng.Uniform(10)];
  for (int bucket = 0; bucket < 10; ++bucket) {
    EXPECT_NEAR(histogram[bucket], kDraws / 10, kDraws / 10 * 0.1)
        << "bucket " << bucket;
  }
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random rng(5);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RandomTest, GeometricHasRequestedMean) {
  Random rng(11);
  for (double mean : {1.0, 2.0, 10.0, 50.0}) {
    double sum = 0.0;
    const int kDraws = 20000;
    for (int i = 0; i < kDraws; ++i) {
      const uint64_t v = rng.Geometric(mean);
      ASSERT_GE(v, 1u);
      sum += static_cast<double>(v);
    }
    EXPECT_NEAR(sum / kDraws, mean, mean * 0.06) << "mean=" << mean;
  }
}

TEST(RandomTest, BernoulliMatchesProbability) {
  Random rng(13);
  int hits = 0;
  const int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
}

}  // namespace
}  // namespace streamagg
