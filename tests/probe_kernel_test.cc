// Probe-kernel correctness (docs/probe_kernel.md): the batched SIMD hash
// must be bit-identical to the scalar chain on every width/count, the
// single-record and batched paths must resolve identical bucket sequences,
// the sort-drain run buffer must merge exactly, and a runtime in sort mode
// (or flipping modes mid-stream, serial or sharded) must keep every epoch's
// aggregates bit-identical to the direct reference — modes change cost,
// never answers.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <random>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/configuration.h"
#include "dsms/configuration_runtime.h"
#include "dsms/lfta_hash_table.h"
#include "dsms/reference_aggregator.h"
#include "dsms/sharded_runtime.h"
#include "stream/uniform_generator.h"
#include "stream/zipf_generator.h"
#include "util/hash.h"
#include "util/simd_hash.h"

namespace streamagg {
namespace {

// ---------------------------------------------------------------------------
// HashWordsBatch vs. the scalar chain. The dispatched tier is fixed per
// process (whatever the host CPU supports, capped by STREAMAGG_SIMD); CI
// additionally runs this binary with STREAMAGG_SIMD=scalar and =sse2 so
// every tier is exercised somewhere.

TEST(SimdHashTest, BatchMatchesScalarForAllWidthsAndCounts) {
  std::mt19937_64 rng(0xbead5eed);
  for (int width = 1; width <= kMaxAttributes; ++width) {
    // Counts straddle every lane boundary: empty, sub-lane, odd, block-size
    // multiples and a large odd remainder.
    for (const size_t count : {size_t{0}, size_t{1}, size_t{3}, size_t{16},
                               size_t{17}, size_t{64}, size_t{67}}) {
      std::vector<std::vector<uint32_t>> storage(
          static_cast<size_t>(width), std::vector<uint32_t>(count + 1));
      std::vector<const uint32_t*> cols(static_cast<size_t>(width));
      for (int w = 0; w < width; ++w) {
        for (size_t j = 0; j < count; ++j) {
          storage[static_cast<size_t>(w)][j] = static_cast<uint32_t>(rng());
        }
        cols[static_cast<size_t>(w)] = storage[static_cast<size_t>(w)].data();
      }
      const uint64_t seed = rng();
      std::vector<uint64_t> out(count + 1, 0xabababababababab);
      HashWordsBatch(cols.data(), width, count, seed, out.data());
      for (size_t j = 0; j < count; ++j) {
        uint32_t key[kMaxAttributes];
        for (int w = 0; w < width; ++w) {
          key[w] = storage[static_cast<size_t>(w)][j];
        }
        ASSERT_EQ(out[j], HashWords(key, static_cast<size_t>(width), seed))
            << "width=" << width << " count=" << count << " j=" << j;
      }
      // count is exclusive: the element past the batch is untouched.
      EXPECT_EQ(out[count], 0xababababababababull);
    }
  }
}

TEST(SimdHashTest, DispatchedTierIsStableAndNamed) {
  const std::string tier = SimdTierName();
  EXPECT_TRUE(tier == "avx2" || tier == "sse2" || tier == "scalar") << tier;
  EXPECT_EQ(tier, SimdTierName());  // Dispatch is picked once per process.
}

// ---------------------------------------------------------------------------
// Bucket-sequence regression: BucketOf (single-record) and
// BucketOfHash(HashWordsBatch) (batched) must agree on every key, and the
// underlying chain must never drift — pinned goldens catch any "harmless"
// hash tweak that would silently re-shuffle every table.

TEST(ProbeKernelTest, HashChainGoldensArePinned) {
  const uint32_t k1[3] = {1, 2, 3};
  const uint32_t k2[3] = {0xdeadbeef, 0, 0xffffffff};
  const uint32_t k3[1] = {42};
  EXPECT_EQ(HashWords(k1, 3, 0x1f7a), 0xee7ac4e8633f1ce6ull);
  EXPECT_EQ(HashWords(k2, 3, 0x1f7a), 0xe93eb35de8748aa1ull);
  EXPECT_EQ(HashWords(k3, 1, 0), 0xe0d9de1ca67956ecull);
  EXPECT_EQ(FastRange64(HashWords(k1, 3, 0x1f7a), 1024), 953u);
  EXPECT_EQ(FastRange64(HashWords(k2, 3, 0x1f7a), 1024), 932u);
}

TEST(ProbeKernelTest, BucketSequenceIdenticalSingleVsBatched) {
  const LftaHashTable table(1024, 3, /*seed=*/0x1f7a);
  std::mt19937_64 rng(7);
  constexpr size_t kCount = 500;
  std::vector<uint32_t> col0(kCount), col1(kCount), col2(kCount);
  std::vector<GroupKey> keys(kCount);
  for (size_t j = 0; j < kCount; ++j) {
    GroupKey& key = keys[j];
    key.size = 3;
    key.values[0] = col0[j] = static_cast<uint32_t>(rng());
    key.values[1] = col1[j] = static_cast<uint32_t>(rng());
    key.values[2] = col2[j] = static_cast<uint32_t>(rng());
  }
  const uint32_t* cols[3] = {col0.data(), col1.data(), col2.data()};
  std::vector<uint64_t> hashes(kCount);
  HashWordsBatch(cols, 3, kCount, table.seed(), hashes.data());
  for (size_t j = 0; j < kCount; ++j) {
    ASSERT_EQ(table.BucketOf(keys[j]), table.BucketOfHash(hashes[j]))
        << "key " << j;
  }
}

// ---------------------------------------------------------------------------
// Sort-drain run buffer semantics.

GroupKey Key2(uint32_t a, uint32_t b) {
  GroupKey key;
  key.size = 2;
  key.values[0] = a;
  key.values[1] = b;
  return key;
}

uint64_t KeyHash(const LftaHashTable& table, const GroupKey& key) {
  return HashWords(key.values.data(), static_cast<size_t>(key.size),
                   table.seed());
}

TEST(SortDrainTest, DrainMergesDuplicateKeysExactly) {
  LftaHashTable table(64, 2, /*seed=*/0x77);
  table.set_probe_mode(ProbeMode::kSort);
  // 10 groups, appended round-robin with per-append count contributions that
  // make each group's exact total distinguishable.
  std::map<uint32_t, uint64_t> expected;
  for (uint32_t i = 0; i < 1000; ++i) {
    const uint32_t g = i % 10;
    const GroupKey key = Key2(g, g + 100);
    const AggregateState add = AggregateState::FromCount(1 + g);
    EXPECT_FALSE(table.SortAppend(key, add, KeyHash(table, key)));
    expected[g] += 1 + g;
  }
  EXPECT_EQ(table.sort_run_size(), 1000u);
  std::map<uint32_t, uint64_t> drained;
  const uint64_t emitted =
      table.DrainSortRun([&](const GroupKey& key, const AggregateState& st) {
        drained[key.values[0]] += st.count;
      });
  EXPECT_EQ(emitted, 10u);
  EXPECT_EQ(drained, expected);
  EXPECT_EQ(table.sort_run_size(), 0u);
  EXPECT_EQ(table.sort_appends(), 1000u);
  EXPECT_EQ(table.sort_drains(), 1u);
  EXPECT_EQ(table.sort_drained_entries(), 1000u);
  EXPECT_EQ(table.sort_unique_groups(), 10u);
  // Hash-side tallies are untouched: sort appends are not probes.
  EXPECT_EQ(table.probes(), 0u);
  EXPECT_EQ(table.occupied_buckets(), 0u);
}

TEST(SortDrainTest, DrainMergesMetricStates) {
  const std::vector<MetricSpec> metrics = {{AggregateOp::kSum, 0},
                                           {AggregateOp::kMin, 1},
                                           {AggregateOp::kMax, 1}};
  LftaHashTable table(64, 2, metrics, /*seed=*/0x99);
  table.set_probe_mode(ProbeMode::kSort);
  const GroupKey key = Key2(7, 8);
  const uint64_t hash = KeyHash(table, key);
  for (uint64_t v : {30ull, 10ull, 20ull}) {
    AggregateState add = AggregateState::FromCount(1);
    add.num_metrics = 3;
    add.metrics[0] = v;  // sum -> 60
    add.metrics[1] = v;  // min -> 10
    add.metrics[2] = v;  // max -> 30
    table.SortAppend(key, add, hash);
  }
  uint64_t emitted = 0;
  table.DrainSortRun([&](const GroupKey& k, const AggregateState& st) {
    ++emitted;
    EXPECT_EQ(k, key);
    EXPECT_EQ(st.count, 3u);
    EXPECT_EQ(st.metrics[0], 60u);
    EXPECT_EQ(st.metrics[1], 10u);
    EXPECT_EQ(st.metrics[2], 30u);
  });
  EXPECT_EQ(emitted, 1u);
}

TEST(SortDrainTest, AppendSignalsFullExactlyAtCapacity) {
  LftaHashTable table(16, 1, /*seed=*/0x3);
  table.set_probe_mode(ProbeMode::kSort);
  GroupKey key;
  key.size = 1;
  for (uint32_t i = 0; i < LftaHashTable::kSortRunCapacity; ++i) {
    key.values[0] = i;  // All distinct: no merging hides the count.
    const bool full =
        table.SortAppend(key, AggregateState::FromCount(1), KeyHash(table, key));
    EXPECT_EQ(full, i + 1 == LftaHashTable::kSortRunCapacity) << i;
  }
  uint64_t emitted = table.DrainSortRun([](const GroupKey&,
                                           const AggregateState&) {});
  EXPECT_EQ(emitted, LftaHashTable::kSortRunCapacity);
  // Drain on an empty run is a no-op that records nothing.
  emitted = table.DrainSortRun([](const GroupKey&, const AggregateState&) {});
  EXPECT_EQ(emitted, 0u);
  EXPECT_EQ(table.sort_drains(), 1u);
}

TEST(SortDrainTest, ResetStatsClearsSortTallies) {
  LftaHashTable table(16, 1, /*seed=*/0x5);
  GroupKey key;
  key.size = 1;
  key.values[0] = 9;
  table.SortAppend(key, AggregateState::FromCount(1), KeyHash(table, key));
  table.DrainSortRun([](const GroupKey&, const AggregateState&) {});
  table.ResetStats();
  EXPECT_EQ(table.sort_appends(), 0u);
  EXPECT_EQ(table.sort_drains(), 0u);
  EXPECT_EQ(table.sort_drained_entries(), 0u);
  EXPECT_EQ(table.sort_unique_groups(), 0u);
}

// ---------------------------------------------------------------------------
// Runtime-level probe modes: answers bit-identical to the reference (and so
// to the hash-mode runtime) on every batch split, across mid-stream flips,
// and on sharded splits.

std::vector<RuntimeRelationSpec> SpecsFor(const Schema& schema,
                                          const std::string& config_text,
                                          double buckets_per_table) {
  auto config = Configuration::Parse(schema, config_text);
  EXPECT_TRUE(config.ok()) << config_text;
  auto specs = config->ToRuntimeSpecs(
      std::vector<double>(config->num_nodes(), buckets_per_table));
  EXPECT_TRUE(specs.ok());
  return *specs;
}

Trace SaturatedTrace(uint64_t seed) {
  // Groups >> buckets: the regime sort mode exists for.
  const Schema schema = *Schema::Default(4);
  auto gen = std::move(UniformGenerator::Make(schema, 4000, seed)).value();
  return Trace::Generate(*gen, 50000, 10.0);
}

void ExpectMatchesReference(const ConfigurationRuntime& runtime,
                            const Trace& trace,
                            const std::string& config_text,
                            double epoch_seconds, const std::string& label) {
  auto config = Configuration::Parse(trace.schema(), config_text);
  const std::vector<QueryDef> queries = config->QueryDefs();
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const auto expected = ComputeReferenceAggregate(
        trace, queries[qi].group_by, epoch_seconds, queries[qi].metrics);
    std::string diagnostic;
    EXPECT_TRUE(AggregatesEqual(expected, runtime.hfta(),
                                static_cast<int>(qi), &diagnostic))
        << label << " query " << qi << ": " << diagnostic;
  }
}

TEST(ProbeModeRuntimeTest, SetProbeModesValidatesSize) {
  const Schema schema = *Schema::Default(4);
  auto runtime = ConfigurationRuntime::Make(
      schema, SpecsFor(schema, "ABCD(AB CD)", 128.0), 0.0);
  ASSERT_TRUE(runtime.ok());
  EXPECT_EQ((*runtime)->num_raw_relations(), 1);
  EXPECT_FALSE((*runtime)->SetProbeModes({ProbeMode::kSort, ProbeMode::kSort})
                   .ok());
  ASSERT_TRUE((*runtime)->SetProbeModes({ProbeMode::kSort}).ok());
  EXPECT_EQ((*runtime)->probe_mode(0), ProbeMode::kSort);
  ASSERT_TRUE((*runtime)->SetProbeModes({}).ok());  // Empty = all hash.
  EXPECT_EQ((*runtime)->probe_mode(0), ProbeMode::kHash);
}

TEST(ProbeModeRuntimeTest, SortModeMatchesReference) {
  const Trace trace = SaturatedTrace(0x50f7);
  const std::string config_text = "ABCD(AB BCD(BC CD))";
  const std::vector<RuntimeRelationSpec> specs =
      SpecsFor(trace.schema(), config_text, 128.0);
  auto runtime = ConfigurationRuntime::Make(trace.schema(), specs, 2.0);
  ASSERT_TRUE(runtime.ok());
  ASSERT_TRUE((*runtime)->SetProbeModes({ProbeMode::kSort}).ok());
  (*runtime)->ProcessTrace(trace);
  ExpectMatchesReference(**runtime, trace, config_text, 2.0, "sort");
  // The raw root never touched its hash slots: every record went through
  // the run buffer instead.
  const LftaHashTable& root = (*runtime)->table((*runtime)->raw_relation(0));
  EXPECT_EQ(root.sort_appends(), trace.size());
  EXPECT_EQ(root.probes(), 0u);
  EXPECT_GT(root.sort_drains(), 0u);
  EXPECT_EQ(root.sort_drained_entries(), trace.size());
}

TEST(ProbeModeRuntimeTest, SortModeBitIdenticalAcrossBatchSplits) {
  const Trace trace = SaturatedTrace(0x50f8);
  const std::string config_text = "ABCD(AB CD)";
  const std::vector<RuntimeRelationSpec> specs =
      SpecsFor(trace.schema(), config_text, 128.0);
  RuntimeCounters reference_counters;
  uint64_t reference_unique = 0;
  bool first = true;
  for (const size_t batch : {size_t{1}, size_t{7}, size_t{64}, trace.size()}) {
    auto runtime = ConfigurationRuntime::Make(trace.schema(), specs, 2.0);
    ASSERT_TRUE(runtime.ok());
    ASSERT_TRUE((*runtime)->SetProbeModes({ProbeMode::kSort}).ok());
    const std::span<const Record> records(trace.records());
    for (size_t i = 0; i < records.size(); i += batch) {
      (*runtime)->ProcessBatch(
          records.subspan(i, std::min(batch, records.size() - i)));
    }
    (*runtime)->FlushEpoch();
    ExpectMatchesReference(**runtime, trace, config_text, 2.0,
                           "batch=" + std::to_string(batch));
    const LftaHashTable& root =
        (*runtime)->table((*runtime)->raw_relation(0));
    if (first) {
      reference_counters = (*runtime)->counters();
      reference_unique = root.sort_unique_groups();
      first = false;
    } else {
      // Drains are a deterministic function of the per-table record
      // sequence, so counters (not just answers) are split-invariant.
      EXPECT_EQ((*runtime)->counters(), reference_counters)
          << "batch=" << batch;
      EXPECT_EQ(root.sort_unique_groups(), reference_unique)
          << "batch=" << batch;
    }
  }
}

TEST(ProbeModeRuntimeTest, MidStreamFlipsKeepAnswersExact) {
  // hash -> sort at one third, sort -> hash at two thirds, both at raw
  // record boundaries mid-epoch: the pending run buffer left by the second
  // flip must drain at the next epoch flush, stranding nothing.
  const Trace trace = SaturatedTrace(0x50f9);
  const std::string config_text = "ABCD(AB BCD(BC CD))";
  const std::vector<RuntimeRelationSpec> specs =
      SpecsFor(trace.schema(), config_text, 128.0);
  auto runtime = ConfigurationRuntime::Make(trace.schema(), specs, 2.0);
  ASSERT_TRUE(runtime.ok());
  const std::span<const Record> records(trace.records());
  const size_t third = records.size() / 3;
  (*runtime)->ProcessBatch(records.subspan(0, third));
  ASSERT_TRUE((*runtime)->SetProbeModes({ProbeMode::kSort}).ok());
  (*runtime)->ProcessBatch(records.subspan(third, third));
  ASSERT_TRUE((*runtime)->SetProbeModes({ProbeMode::kHash}).ok());
  (*runtime)->ProcessBatch(records.subspan(2 * third));
  (*runtime)->FlushEpoch();
  ExpectMatchesReference(**runtime, trace, config_text, 2.0, "flip");
  const LftaHashTable& root = (*runtime)->table((*runtime)->raw_relation(0));
  EXPECT_GT(root.sort_appends(), 0u);
  EXPECT_GT(root.probes(), 0u);
  EXPECT_EQ(root.sort_run_size(), 0u) << "flush must drain the run buffer";
}

TEST(ProbeModeRuntimeTest, ShardedSortModeMatchesReference) {
  // The TSan-facing variant: a P x S matrix with every shard's root in sort
  // mode must still match the reference exactly.
  const Schema schema = *Schema::Default(4);
  auto universe = GroupUniverse::Uniform(schema, 3000, {60, 60, 60, 60}, 11);
  auto gen =
      std::move(ZipfGenerator::Make(std::move(*universe), 1.0, 12)).value();
  const Trace trace = Trace::Generate(*gen, 50000, 10.0);
  const std::string config_text = "ABCD(AB CD)";
  const std::vector<RuntimeRelationSpec> specs =
      SpecsFor(schema, config_text, 128.0);
  for (const auto& [producers, shards] :
       std::vector<std::pair<int, int>>{{1, 4}, {2, 2}}) {
    ShardedRuntime::Options options;
    options.num_shards = shards;
    options.num_producers = producers;
    auto sharded = ShardedRuntime::Make(schema, specs, 2.0, options);
    ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
    ASSERT_TRUE((*sharded)->SetProbeModes({ProbeMode::kSort}).ok());
    (*sharded)->ProcessTrace(trace);
    auto config = Configuration::Parse(schema, config_text);
    const std::vector<QueryDef> queries = config->QueryDefs();
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      const auto expected = ComputeReferenceAggregate(
          trace, queries[qi].group_by, 2.0, queries[qi].metrics);
      std::string diagnostic;
      EXPECT_TRUE(AggregatesEqual(expected, (*sharded)->hfta(),
                                  static_cast<int>(qi), &diagnostic))
          << "P=" << producers << " S=" << shards << " query " << qi << ": "
          << diagnostic;
    }
  }
}

}  // namespace
}  // namespace streamagg
