#include "util/math.h"

#include <cmath>

#include <gtest/gtest.h>

namespace streamagg {
namespace {

TEST(BinomialPmfTest, SmallCasesMatchDirectComputation) {
  // Binomial(4, 0.5): 1/16, 4/16, 6/16, 4/16, 1/16.
  EXPECT_NEAR(BinomialPmf(4, 0.5, 0), 1.0 / 16, 1e-12);
  EXPECT_NEAR(BinomialPmf(4, 0.5, 1), 4.0 / 16, 1e-12);
  EXPECT_NEAR(BinomialPmf(4, 0.5, 2), 6.0 / 16, 1e-12);
  EXPECT_NEAR(BinomialPmf(4, 0.5, 3), 4.0 / 16, 1e-12);
  EXPECT_NEAR(BinomialPmf(4, 0.5, 4), 1.0 / 16, 1e-12);
}

TEST(BinomialPmfTest, DegenerateProbabilities) {
  EXPECT_EQ(BinomialPmf(10, 0.0, 0), 1.0);
  EXPECT_EQ(BinomialPmf(10, 0.0, 1), 0.0);
  EXPECT_EQ(BinomialPmf(10, 1.0, 10), 1.0);
  EXPECT_EQ(BinomialPmf(10, 1.0, 9), 0.0);
  EXPECT_EQ(BinomialPmf(10, 0.5, 11), 0.0);  // k > n.
}

TEST(BinomialPmfTest, SumsToOne) {
  for (double p : {0.001, 0.3, 0.9}) {
    double sum = 0.0;
    for (uint64_t k = 0; k <= 50; ++k) sum += BinomialPmf(50, p, k);
    EXPECT_NEAR(sum, 1.0, 1e-9) << "p=" << p;
  }
}

TEST(BinomialPmfTest, StableForLargeN) {
  // Mean of Binomial(10^6, 10^-3) is 1000; pmf at the mean is ~0.0126.
  const double pmf = BinomialPmf(1000000, 1e-3, 1000);
  EXPECT_GT(pmf, 0.012);
  EXPECT_LT(pmf, 0.013);
}

TEST(RandomHashCollisionRateTest, NoCollisionsWithOneGroup) {
  EXPECT_EQ(RandomHashCollisionRate(1.0, 100.0), 0.0);
  EXPECT_EQ(RandomHashCollisionRate(0.0, 100.0), 0.0);
}

TEST(RandomHashCollisionRateTest, ApproachesOneWhenOverloaded) {
  EXPECT_GT(RandomHashCollisionRate(1e6, 10.0), 0.99);
}

TEST(RandomHashCollisionRateTest, MonotoneInGroupsAndBuckets) {
  double prev = 0.0;
  for (double g = 100; g <= 5000; g += 100) {
    const double x = RandomHashCollisionRate(g, 1000);
    EXPECT_GE(x, prev) << "g=" << g;
    prev = x;
  }
  prev = 1.0;
  for (double b = 100; b <= 5000; b += 100) {
    const double x = RandomHashCollisionRate(1000, b);
    EXPECT_LE(x, prev) << "b=" << b;
    prev = x;
  }
}

TEST(RandomHashCollisionRateTest, DependsOnRatioOnly) {
  // Paper Table 1: at fixed g/b the rate varies < 1.5% across b.
  for (double ratio : {0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0}) {
    const double at_300 = RandomHashCollisionRate(ratio * 300, 300);
    const double at_3000 = RandomHashCollisionRate(ratio * 3000, 3000);
    EXPECT_NEAR(at_300, at_3000, 0.015 * std::max(at_300, 1e-6))
        << "ratio=" << ratio;
  }
}

TEST(SummarizeTest, EmptyInput) {
  SummaryStats s = Summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(SummarizeTest, BasicStatistics) {
  SummaryStats s = Summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_NEAR(s.stddev, std::sqrt(1.25), 1e-12);
}

TEST(SolveLinearSystemTest, SolvesTwoByTwo) {
  // 2x + y = 5; x - y = 1 -> x = 2, y = 1.
  auto r = SolveLinearSystem({2, 1, 1, -1}, {5, 1});
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR((*r)[0], 2.0, 1e-12);
  EXPECT_NEAR((*r)[1], 1.0, 1e-12);
}

TEST(SolveLinearSystemTest, RejectsSingular) {
  auto r = SolveLinearSystem({1, 2, 2, 4}, {3, 6});
  EXPECT_FALSE(r.ok());
}

TEST(SolveLinearSystemTest, RejectsSizeMismatch) {
  auto r = SolveLinearSystem({1, 2, 3}, {1, 2});
  EXPECT_FALSE(r.ok());
}

TEST(FitPolynomialTest, RecoversExactLine) {
  std::vector<double> xs, ys;
  for (int i = 0; i <= 10; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 + 2.0 * i);
  }
  auto fit = FitPolynomial(xs, ys, 1);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->coefficients[0], 3.0, 1e-9);
  EXPECT_NEAR(fit->coefficients[1], 2.0, 1e-9);
  EXPECT_LT(fit->max_relative_error, 1e-9);
}

TEST(FitPolynomialTest, RecoversExactQuadratic) {
  std::vector<double> xs, ys;
  for (int i = 0; i <= 20; ++i) {
    const double x = 0.1 * i;
    xs.push_back(x);
    ys.push_back(1.0 - 0.5 * x + 0.25 * x * x);
  }
  auto fit = FitPolynomial(xs, ys, 2);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->coefficients[0], 1.0, 1e-8);
  EXPECT_NEAR(fit->coefficients[1], -0.5, 1e-8);
  EXPECT_NEAR(fit->coefficients[2], 0.25, 1e-8);
}

TEST(FitPolynomialTest, RejectsUnderdeterminedInput) {
  EXPECT_FALSE(FitPolynomial({1.0}, {2.0}, 1).ok());
  EXPECT_FALSE(FitPolynomial({1.0, 2.0}, {2.0}, 1).ok());
  EXPECT_FALSE(FitPolynomial({1.0, 2.0}, {2.0, 3.0}, -1).ok());
}

TEST(FitPolynomialTest, EvaluateUsesHorner) {
  PolynomialFit fit;
  fit.coefficients = {1.0, -2.0, 3.0};  // 1 - 2x + 3x^2
  EXPECT_DOUBLE_EQ(fit.Evaluate(0.0), 1.0);
  EXPECT_DOUBLE_EQ(fit.Evaluate(2.0), 1.0 - 4.0 + 12.0);
}

}  // namespace
}  // namespace streamagg
