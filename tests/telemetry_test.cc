// Telemetry layer (obs/): histogram bucket semantics, Merge algebra,
// snapshot JSON round trips, and the shard-merge invariant — merged
// snapshot totals must be bit-identical to the runtime's own counters.

#include "obs/telemetry.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "core/configuration.h"
#include "dsms/sliding_window.h"
#include "obs/metrics.h"
#include "stream/uniform_generator.h"
#include "stream/zipf_generator.h"
#include "util/random.h"

namespace streamagg {
namespace {

// ---------------------------------------------------------------------------
// LogHistogram

TEST(LogHistogramTest, BucketBoundaries) {
  // Bucket 0 holds exactly {0}; bucket i >= 1 holds [2^(i-1), 2^i - 1].
  EXPECT_EQ(LogHistogram::BucketFor(0), 0);
  EXPECT_EQ(LogHistogram::BucketFor(1), 1);
  EXPECT_EQ(LogHistogram::BucketFor(2), 2);
  EXPECT_EQ(LogHistogram::BucketFor(3), 2);
  EXPECT_EQ(LogHistogram::BucketFor(4), 3);
  EXPECT_EQ(LogHistogram::BucketFor(1023), 10);
  EXPECT_EQ(LogHistogram::BucketFor(1024), 11);
  EXPECT_EQ(LogHistogram::BucketFor(std::numeric_limits<uint64_t>::max()),
            64);

  // Every bucket's own bounds land back in that bucket, and consecutive
  // buckets tile the uint64 range without gap or overlap.
  for (int b = 0; b < LogHistogram::kNumBuckets; ++b) {
    EXPECT_EQ(LogHistogram::BucketFor(LogHistogram::BucketLowerBound(b)), b);
    EXPECT_EQ(LogHistogram::BucketFor(LogHistogram::BucketUpperBound(b)), b);
    if (b + 1 < LogHistogram::kNumBuckets) {
      EXPECT_EQ(LogHistogram::BucketUpperBound(b) + 1,
                LogHistogram::BucketLowerBound(b + 1));
    }
  }
  EXPECT_EQ(LogHistogram::BucketUpperBound(LogHistogram::kNumBuckets - 1),
            std::numeric_limits<uint64_t>::max());
}

TEST(LogHistogramTest, RecordTracksStats) {
  LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Quantile(0.5), 0u);

  for (uint64_t v : {7u, 0u, 100u, 3u}) h.Record(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 110u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_DOUBLE_EQ(h.Mean(), 27.5);
  EXPECT_EQ(h.bucket_count(LogHistogram::BucketFor(0)), 1u);
  EXPECT_EQ(h.bucket_count(LogHistogram::BucketFor(7)), 1u);
}

TEST(LogHistogramTest, QuantileIsLogScaleExact) {
  LogHistogram h;
  for (uint64_t v = 1; v <= 100; ++v) h.Record(v);
  // p100 clamps to the observed max, not the bucket upper bound (127).
  EXPECT_EQ(h.Quantile(1.0), 100u);
  // p1 -> rank 1 -> value 1 -> bucket 1, upper bound 1.
  EXPECT_EQ(h.Quantile(0.01), 1u);
  // p50 -> rank 50 -> bucket of 50 is [32, 63].
  EXPECT_EQ(h.Quantile(0.5), 63u);
}

TEST(LogHistogramTest, SinceSubtractsBucketCounts) {
  // Since() inverts Merge-style accumulation: recording a baseline, then
  // more values, then diffing must see exactly the later values' buckets.
  LogHistogram h;
  for (uint64_t v : {5u, 9u, 17u}) h.Record(v);
  const LogHistogram baseline = h;
  for (uint64_t v : {100u, 200u, 300u, 400u}) h.Record(v);

  const LogHistogram delta = h.Since(baseline);
  EXPECT_EQ(delta.count(), 4u);
  EXPECT_EQ(delta.sum(), 1000u);
  EXPECT_EQ(delta.bucket_count(LogHistogram::BucketFor(5)), 0u);
  EXPECT_EQ(delta.bucket_count(LogHistogram::BucketFor(100)), 1u);
  EXPECT_EQ(delta.bucket_count(LogHistogram::BucketFor(200)), 1u);
  // Quantile over the window diff answers per-epoch percentile questions
  // (the overload controller's epoch-gap watermark); the upper-bound
  // convention clamps to the lifetime max.
  EXPECT_EQ(delta.Quantile(1.0), std::min<uint64_t>(511, h.max()));

  // Identity baseline -> empty delta; empty delta quantiles are 0.
  const LogHistogram empty = h.Since(h);
  EXPECT_EQ(empty.count(), 0u);
  EXPECT_EQ(empty.Quantile(0.99), 0u);

  // A baseline from a different (larger) history — a runtime swap shrank
  // the counts — clamps at zero instead of underflowing.
  const LogHistogram swapped = baseline.Since(h);
  EXPECT_EQ(swapped.count(), 0u);
  EXPECT_EQ(swapped.Quantile(0.99), 0u);
}

LogHistogram RandomHistogram(Random* rng) {
  LogHistogram h;
  const size_t n = rng->Uniform(40);
  for (size_t i = 0; i < n; ++i) {
    // Spread across the whole bucket range, including 0 and huge values.
    h.Record(rng->Next64() >> rng->Uniform(64));
  }
  return h;
}

TEST(LogHistogramTest, MergeIsAssociativeAndCommutative) {
  // Property test: element-wise merge must be exactly associative and
  // commutative, with the empty histogram as identity — this is what makes
  // shard-merged and swap-accumulated telemetry well defined regardless of
  // merge order.
  Random rng(0x7e1e);
  for (int trial = 0; trial < 200; ++trial) {
    const LogHistogram a = RandomHistogram(&rng);
    const LogHistogram b = RandomHistogram(&rng);
    const LogHistogram c = RandomHistogram(&rng);

    LogHistogram ab = a;
    ab.Merge(b);
    LogHistogram ba = b;
    ba.Merge(a);
    EXPECT_TRUE(ab == ba) << "commutativity, trial " << trial;

    LogHistogram ab_c = ab;
    ab_c.Merge(c);
    LogHistogram bc = b;
    bc.Merge(c);
    LogHistogram a_bc = a;
    a_bc.Merge(bc);
    EXPECT_TRUE(ab_c == a_bc) << "associativity, trial " << trial;

    LogHistogram with_empty = a;
    with_empty.Merge(LogHistogram());
    EXPECT_TRUE(with_empty == a) << "identity, trial " << trial;
  }
}

// ---------------------------------------------------------------------------
// Snapshot JSON round trip

TelemetrySnapshot HandCraftedSnapshot() {
  TelemetrySnapshot snap;
  snap.epoch = 41;
  snap.num_shards = 3;
  snap.reoptimizations = 2;
  snap.counters.records = (uint64_t{1} << 63) + 12345;  // Exceeds double.
  snap.counters.intra_probes = std::numeric_limits<uint64_t>::max();
  snap.counters.intra_transfers = 7;
  snap.counters.flush_probes = 1024;
  snap.counters.flush_transfers = 99;
  snap.counters.epochs_flushed = 41;

  TableTelemetry table;
  table.relation = "ABD";
  table.is_query = true;
  table.query_index = 2;
  table.parent = 0;
  table.num_buckets = 512;
  table.occupied = 100;
  table.occupied_hwm = 300;
  table.probes = 100000;
  table.inserts = 60000;
  table.updates = 30000;
  table.collisions = 10000;
  table.intra_evictions = 4000;
  table.flush_evictions = 6000;
  table.hfta_transfers = 10000;
  table.flushed_entries = 4100;
  table.flush_occupancy.Record(100);
  table.flush_occupancy.Record(120);
  table.observed_collision_rate = 0.1;
  table.predicted_collision_rate = 0.0875;
  snap.tables.push_back(table);
  table.relation = "BC";
  table.is_query = false;
  table.query_index = -1;
  table.predicted_collision_rate = TableTelemetry::kNoPrediction;
  snap.tables.push_back(table);

  snap.num_producers = 2;
  snap.shards.push_back(ShardTelemetry{1000, 12, 7, 4, 0});
  snap.shards.push_back(ShardTelemetry{997, 3, 0, -1, -1});
  snap.producers.push_back(ProducerTelemetry{1200, 9, 3, -1, -1});
  snap.producers.push_back(ProducerTelemetry{797, 12, 0, 5, 1});
  snap.hfta_groups = {123, 0, 456789};
  snap.replans.push_back(ReplanEvent{40, "AB", 0.3125, 3, 2, 1.5, 0.75});
  snap.replans.push_back(ReplanEvent{41, "CD", 0.125, 1, 4, 0.25, 0.0});
  QueryChurnEvent add;
  add.epoch = 40;
  add.add = true;
  add.query_id = 3;
  add.relation = "BD";
  add.grafted = true;
  add.replanned_nodes = 2;
  add.pinned_nodes = 5;
  add.optimize_millis = 0.5;
  add.merge_millis = 0.125;
  snap.query_churn.push_back(add);
  QueryChurnEvent drop;
  drop.epoch = 41;
  drop.add = false;
  drop.query_id = 1;
  drop.relation = "AB";
  drop.aliased = true;
  snap.query_churn.push_back(drop);
  snap.shedding.enabled = true;
  snap.shedding.target_fraction = 0.5;
  snap.shedding.offered_records = 60000;
  snap.shedding.shed_probes = 45000;
  snap.shedding.shed_fraction = 0.375;
  snap.shedding.accuracy_loss = 0.25;
  snap.shedding.cycles_saved_per_record = 1.5;
  snap.shedding.rebalances = 2;
  snap.shedding.relations.push_back(
      SheddingRelationTelemetry{"ABCD", 12.5, 0.5, 30000});
  snap.shedding.relations.push_back(
      SheddingRelationTelemetry{"CD", 3.25, 0.25, 15000});
  snap.batch_records.Record(64);
  snap.batch_ns.Record(123456);
  snap.flush_ns.Record(std::numeric_limits<uint64_t>::max());
  snap.epoch_gap_ns.Record(0);
  return snap;
}

TEST(TelemetrySnapshotTest, JsonRoundTripIsBitExact) {
  const TelemetrySnapshot snap = HandCraftedSnapshot();
  const std::string line = snap.ToJsonLine();
  EXPECT_EQ(line.find('\n'), std::string::npos);  // One line.
  auto restored = TelemetrySnapshot::FromJsonLine(line);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  // operator== covers every field, including the uint64 values above the
  // double-exact range and the kNoPrediction sentinel.
  EXPECT_TRUE(*restored == snap);
  // And the round trip is a fixed point of serialization.
  EXPECT_EQ(restored->ToJsonLine(), line);
}

TEST(TelemetrySnapshotTest, FromJsonLineAcceptsPreProducerSnapshots) {
  // Lines serialized before the multi-producer front end carry neither
  // "num_producers" nor "producers" (nor shard placement fields); they must
  // still parse, with the serial defaults.
  TelemetrySnapshot old = HandCraftedSnapshot();
  old.num_producers = 1;
  old.producers.clear();
  for (ShardTelemetry& s : old.shards) {
    s.cpu = -1;
    s.node = -1;
  }
  std::string line = old.ToJsonLine();
  // Strip the new fields to simulate an old serializer.
  auto strip = [&line](const std::string& key) {
    const size_t at = line.find(key);
    ASSERT_NE(at, std::string::npos) << key;
    size_t end = at + key.size();
    int depth = 0;
    while (end < line.size()) {
      const char c = line[end];
      if (c == '[' || c == '{') ++depth;
      if (c == ']' || c == '}') {
        if (depth == 0) break;
        --depth;
      }
      if (c == ',' && depth == 0) {
        ++end;  // Swallow the trailing comma.
        break;
      }
      ++end;
    }
    size_t from = at;
    if (end < line.size() && (line[end] == '}' || line[end] == ']') &&
        from > 0 && line[from - 1] == ',') {
      --from;  // Last field of its object: drop the comma before it instead.
    }
    line.erase(from, end - from);
  };
  strip("\"num_producers\":");
  strip("\"producers\":");
  while (line.find("\"cpu\":") != std::string::npos) strip("\"cpu\":");
  while (line.find("\"node\":") != std::string::npos) strip("\"node\":");

  auto restored = TelemetrySnapshot::FromJsonLine(line);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString() << "\n" << line;
  EXPECT_TRUE(*restored == old);
}

TEST(TelemetrySnapshotTest, FromJsonLineAcceptsPreReplanSnapshots) {
  // Lines serialized before drift-driven re-planning carry no "replans"
  // array; they must still parse, with an empty re-plan history.
  TelemetrySnapshot old = HandCraftedSnapshot();
  old.replans.clear();
  std::string line = old.ToJsonLine();
  const std::string key = "\"replans\":[]";
  const size_t at = line.find(key);
  ASSERT_NE(at, std::string::npos) << line;
  size_t len = key.size();
  if (at + len < line.size() && line[at + len] == ',') ++len;
  line.erase(at, len);

  auto restored = TelemetrySnapshot::FromJsonLine(line);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString() << "\n" << line;
  EXPECT_TRUE(*restored == old);
}

TEST(TelemetrySnapshotTest, SheddingSectionAbsentWhenDisabled) {
  // Engines without the overload controller serialize no "shedding" key at
  // all (any telemetry tier), and pre-shedding lines parse to the default
  // disabled section — the schema change is invisible both directions.
  TelemetrySnapshot snap = HandCraftedSnapshot();
  snap.shedding = SheddingTelemetry{};
  const std::string line = snap.ToJsonLine();
  EXPECT_EQ(line.find("\"shedding\""), std::string::npos) << line;
  auto restored = TelemetrySnapshot::FromJsonLine(line);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_TRUE(*restored == snap);
}

TEST(TelemetrySnapshotTest, SheddingMergeSumsCountsAndRecomputesFraction) {
  SheddingTelemetry a;
  a.enabled = true;
  a.target_fraction = 0.25;
  a.offered_records = 1000;
  a.shed_probes = 500;
  a.rebalances = 1;
  a.relations.push_back(SheddingRelationTelemetry{"AB", 2.0, 0.25, 500});
  SheddingTelemetry b;
  b.enabled = true;
  b.target_fraction = 0.5;
  b.offered_records = 3000;
  b.shed_probes = 1500;
  b.rebalances = 2;
  b.relations.push_back(SheddingRelationTelemetry{"AB", 2.0, 0.5, 1500});

  a.MergeFrom(b);
  EXPECT_TRUE(a.enabled);
  EXPECT_DOUBLE_EQ(a.target_fraction, 0.5);
  EXPECT_EQ(a.offered_records, 4000u);
  EXPECT_EQ(a.shed_probes, 2000u);
  EXPECT_EQ(a.rebalances, 3u);
  ASSERT_EQ(a.relations.size(), 1u);
  EXPECT_EQ(a.relations[0].shed_records, 2000u);
  // The realized fraction recomputes from the summed counts: 2000 drops
  // over 4000 offered records at one raw relation.
  EXPECT_DOUBLE_EQ(a.shed_fraction, 0.5);
}

TEST(TelemetrySnapshotTest, SnapshotMergeCarriesSheddingAndHistograms) {
  // Shedding-era snapshots keep the whole merge algebra: the shedding
  // section folds in (counts sum) and the latency histograms underneath it
  // still merge element-wise.
  TelemetrySnapshot a = HandCraftedSnapshot();
  const TelemetrySnapshot b = HandCraftedSnapshot();
  const uint64_t gap_count = a.epoch_gap_ns.count();
  a.MergeFrom(b);
  EXPECT_EQ(a.epoch_gap_ns.count(), 2 * gap_count);
  EXPECT_EQ(a.shedding.offered_records, 2 * b.shedding.offered_records);
  EXPECT_EQ(a.shedding.shed_probes, 2 * b.shedding.shed_probes);
  EXPECT_EQ(a.shedding.rebalances, 2 * b.shedding.rebalances);
  ASSERT_EQ(a.shedding.relations.size(), b.shedding.relations.size());
  for (size_t i = 0; i < a.shedding.relations.size(); ++i) {
    EXPECT_EQ(a.shedding.relations[i].shed_records,
              2 * b.shedding.relations[i].shed_records)
        << a.shedding.relations[i].relation;
  }
}

TEST(TelemetrySnapshotTest, ToTableMentionsShedding) {
  const std::string table = HandCraftedSnapshot().ToTable();
  EXPECT_NE(table.find("shedding:"), std::string::npos) << table;
}

TEST(TelemetrySnapshotTest, MergeConcatenatesReplans) {
  // Re-plan history is engine-level (shard replicas never carry any), so
  // the merge algebra for it is plain concatenation in call order.
  TelemetrySnapshot a;
  a.replans.push_back(ReplanEvent{3, "AB", 0.25, 2, 1, 0.5});
  TelemetrySnapshot b;
  b.replans.push_back(ReplanEvent{5, "BC", 0.5, 4, 0, 1.0});
  b.replans.push_back(ReplanEvent{7, "CD", 0.75, 1, 3, 2.0});
  a.MergeFrom(b);
  ASSERT_EQ(a.replans.size(), 3u);
  EXPECT_EQ(a.replans[0].trigger_relation, "AB");
  EXPECT_EQ(a.replans[1].trigger_relation, "BC");
  EXPECT_EQ(a.replans[2].trigger_relation, "CD");
}

TEST(TelemetrySnapshotTest, ToTableMentionsReplans) {
  const TelemetrySnapshot snap = HandCraftedSnapshot();
  const std::string table = snap.ToTable();
  EXPECT_NE(table.find("re-plans:"), std::string::npos);
  EXPECT_NE(table.find("epoch 40"), std::string::npos);
}

TEST(TelemetrySnapshotTest, FromJsonLineAcceptsPreChurnSnapshots) {
  // Lines serialized before online query churn carry no "query_churn"
  // array; they must still parse, with an empty churn history.
  TelemetrySnapshot old = HandCraftedSnapshot();
  old.query_churn.clear();
  std::string line = old.ToJsonLine();
  ASSERT_EQ(line.find("\"query_churn\""), std::string::npos) << line;

  auto restored = TelemetrySnapshot::FromJsonLine(line);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString() << "\n" << line;
  EXPECT_TRUE(*restored == old);
}

TEST(TelemetrySnapshotTest, ChurnSectionAbsentWhenEmpty) {
  // Engines that never saw AddQuery/DropQuery serialize no "query_churn"
  // key at all — the schema change is invisible to old readers.
  TelemetrySnapshot snap = HandCraftedSnapshot();
  snap.query_churn.clear();
  const std::string line = snap.ToJsonLine();
  EXPECT_EQ(line.find("\"query_churn\""), std::string::npos) << line;
}

TEST(TelemetrySnapshotTest, MergeConcatenatesChurn) {
  // Churn history is engine-level like the re-plan history (shard replicas
  // never carry any), so merge is plain concatenation in call order.
  TelemetrySnapshot a;
  QueryChurnEvent e1;
  e1.epoch = 10;
  e1.add = true;
  e1.query_id = 2;
  e1.relation = "AB";
  a.query_churn.push_back(e1);
  TelemetrySnapshot b;
  QueryChurnEvent e2;
  e2.epoch = 12;
  e2.add = false;
  e2.query_id = 0;
  e2.relation = "CD";
  b.query_churn.push_back(e2);
  a.MergeFrom(b);
  ASSERT_EQ(a.query_churn.size(), 2u);
  EXPECT_EQ(a.query_churn[0].relation, "AB");
  EXPECT_EQ(a.query_churn[1].relation, "CD");
  EXPECT_FALSE(a.query_churn[1].add);
}

TEST(TelemetrySnapshotTest, ToTableMentionsChurn) {
  const std::string table = HandCraftedSnapshot().ToTable();
  EXPECT_NE(table.find("query churn:"), std::string::npos) << table;
}

TEST(TelemetrySnapshotTest, ChurnActionSerializesAsString) {
  // The add/drop flag serializes as "action":"add"/"drop" so operators can
  // grep telemetry logs for drops without decoding booleans.
  const std::string line = HandCraftedSnapshot().ToJsonLine();
  EXPECT_NE(line.find("\"action\":\"add\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"action\":\"drop\""), std::string::npos) << line;
}

TEST(TelemetrySnapshotTest, FromJsonLineRejectsGarbage) {
  EXPECT_FALSE(TelemetrySnapshot::FromJsonLine("").ok());
  EXPECT_FALSE(TelemetrySnapshot::FromJsonLine("not json").ok());
  EXPECT_FALSE(TelemetrySnapshot::FromJsonLine("[1, 2]").ok());
  EXPECT_FALSE(TelemetrySnapshot::FromJsonLine("{\"epoch\": 1,}").ok());
}

TEST(TelemetrySnapshotTest, ToTableMentionsEveryRelation) {
  const TelemetrySnapshot snap = HandCraftedSnapshot();
  const std::string table = snap.ToTable();
  EXPECT_NE(table.find("ABD"), std::string::npos);
  EXPECT_NE(table.find("BC"), std::string::npos);
  EXPECT_NE(table.find("epoch"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Snapshots of live runtimes

Trace TestTrace(uint64_t seed, size_t n = 60000) {
  const Schema schema = *Schema::Default(4);
  auto universe = GroupUniverse::Uniform(schema, 800, {60, 60, 60, 60}, seed);
  auto gen =
      std::move(ZipfGenerator::Make(std::move(*universe), 1.0, seed + 1))
          .value();
  return Trace::Generate(*gen, n, 12.0);
}

std::vector<RuntimeRelationSpec> TestSpecs(const Schema& schema) {
  auto config = Configuration::Parse(schema, "ABCD(AB BCD(BC BD CD))");
  EXPECT_TRUE(config.ok());
  auto specs = config->ToRuntimeSpecs(
      std::vector<double>(config->num_nodes(), 128.0));
  EXPECT_TRUE(specs.ok());
  return *specs;
}

TEST(TelemetrySnapshotTest, SerialRuntimeSnapshotMatchesSources) {
  const Trace trace = TestTrace(0xa11);
  auto runtime =
      ConfigurationRuntime::Make(trace.schema(), TestSpecs(trace.schema()),
                                 3.0);
  ASSERT_TRUE(runtime.ok());
  (*runtime)->ProcessTrace(trace);

  const TelemetrySnapshot snap =
      BuildTelemetrySnapshot(**runtime, trace.schema());
  EXPECT_EQ(snap.num_shards, 1);
  EXPECT_EQ(snap.num_producers, 1);
  EXPECT_TRUE(snap.shards.empty());
  EXPECT_TRUE(snap.producers.empty());
  EXPECT_TRUE(snap.counters == (*runtime)->counters());
  ASSERT_EQ(static_cast<int>(snap.tables.size()),
            (*runtime)->num_relations());
  for (int i = 0; i < (*runtime)->num_relations(); ++i) {
    const LftaHashTable& table = (*runtime)->table(i);
    const TableTelemetry& t = snap.tables[static_cast<size_t>(i)];
    EXPECT_EQ(t.probes, table.probes());
    EXPECT_EQ(t.collisions, table.collisions());
    EXPECT_EQ(t.updates, table.updates());
    EXPECT_EQ(t.inserts, table.inserts());
    EXPECT_EQ(t.probes, t.inserts + t.updates + t.collisions);
    EXPECT_DOUBLE_EQ(t.observed_collision_rate, table.CollisionRate());
    // Raw runtime snapshots carry no model predictions (engine adds them).
    EXPECT_FALSE(t.has_prediction());
  }
  // A snapshot of a live runtime survives the JSON round trip too.
  auto restored = TelemetrySnapshot::FromJsonLine(snap.ToJsonLine());
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(*restored == snap);
}

TEST(TelemetrySnapshotTest, ShardedMergeIsBitIdenticalToRuntimeCounters) {
  // The acceptance invariant: a merged N>1 snapshot's totals are exact
  // uint64 sums over the same events the runtime counted — bit-identical
  // to ShardedRuntime::counters() and to the field-wise sum over replicas.
  const Trace trace = TestTrace(0xb22);
  const std::vector<RuntimeRelationSpec> specs = TestSpecs(trace.schema());
  ShardedRuntime::Options options;
  options.num_shards = 4;
  auto sharded =
      ShardedRuntime::Make(trace.schema(), specs, 3.0, options);
  ASSERT_TRUE(sharded.ok());
  (*sharded)->ProcessTrace(trace);

  const TelemetrySnapshot snap =
      BuildTelemetrySnapshot(**sharded, trace.schema());
  EXPECT_EQ(snap.num_shards, 4);
  EXPECT_TRUE(snap.counters == (*sharded)->counters());
  EXPECT_EQ(snap.counters.records, trace.size());

  // Per-table tallies are the field-wise sums over the shard replicas.
  ASSERT_EQ(static_cast<int>(snap.tables.size()),
            (*sharded)->shard(0).num_relations());
  for (size_t i = 0; i < snap.tables.size(); ++i) {
    uint64_t probes = 0, collisions = 0, updates = 0, flushed = 0;
    for (int s = 0; s < (*sharded)->num_shards(); ++s) {
      const LftaHashTable& table =
          (*sharded)->shard(s).table(static_cast<int>(i));
      probes += table.probes();
      collisions += table.collisions();
      updates += table.updates();
      flushed += table.flushed_entries();
    }
    EXPECT_EQ(snap.tables[i].probes, probes) << "table " << i;
    EXPECT_EQ(snap.tables[i].collisions, collisions) << "table " << i;
    EXPECT_EQ(snap.tables[i].updates, updates) << "table " << i;
    EXPECT_EQ(snap.tables[i].flushed_entries, flushed) << "table " << i;
  }

  // Producer-side ingest stats: every record was routed to some shard, and
  // the default single producer routed all of them.
  ASSERT_EQ(snap.shards.size(), 4u);
  uint64_t routed = 0;
  for (const ShardTelemetry& s : snap.shards) routed += s.records;
  EXPECT_EQ(routed, trace.size());
  EXPECT_EQ(snap.num_producers, 1);
  ASSERT_EQ(snap.producers.size(), 1u);
  EXPECT_EQ(snap.producers[0].records, trace.size());
}

TEST(TelemetrySnapshotTest, SingleShardSnapshotMatchesSerialTables) {
  // One shard behind a queue sees the identical record order through
  // identical tables, so every per-table telemetry field must match the
  // serial runtime exactly (timing histograms excluded by construction —
  // TableTelemetry carries none).
  const Trace trace = TestTrace(0xc33);
  const std::vector<RuntimeRelationSpec> specs = TestSpecs(trace.schema());

  auto serial = ConfigurationRuntime::Make(trace.schema(), specs, 3.0);
  ASSERT_TRUE(serial.ok());
  (*serial)->ProcessTrace(trace);

  ShardedRuntime::Options options;
  options.num_shards = 1;
  auto sharded = ShardedRuntime::Make(trace.schema(), specs, 3.0, options);
  ASSERT_TRUE(sharded.ok());
  (*sharded)->ProcessTrace(trace);

  const TelemetrySnapshot a =
      BuildTelemetrySnapshot(**serial, trace.schema());
  const TelemetrySnapshot b =
      BuildTelemetrySnapshot(**sharded, trace.schema());
  EXPECT_TRUE(a.counters == b.counters);
  ASSERT_EQ(a.tables.size(), b.tables.size());
  for (size_t i = 0; i < a.tables.size(); ++i) {
    EXPECT_TRUE(a.tables[i] == b.tables[i]) << "table " << i;
  }
  EXPECT_EQ(a.hfta_groups, b.hfta_groups);
}

TEST(TelemetrySnapshotTest, RuntimeLevelOffDisablesTelemetryTallies) {
  const Trace trace = TestTrace(0xd44);
  auto runtime =
      ConfigurationRuntime::Make(trace.schema(), TestSpecs(trace.schema()),
                                 3.0);
  ASSERT_TRUE(runtime.ok());
  (*runtime)->set_telemetry_level(TelemetryLevel::kOff);
  (*runtime)->ProcessTrace(trace);

  // The load-bearing counters (adaptive control, cost accounting) never
  // turn off...
  EXPECT_EQ((*runtime)->counters().records, trace.size());
  EXPECT_GT((*runtime)->table(0).probes(), 0u);
  // ...but the telemetry-only tallies and histograms stay zero.
  const RuntimeTelemetry& telemetry = (*runtime)->telemetry();
  EXPECT_EQ(telemetry.batch_ns.count(), 0u);
  EXPECT_EQ(telemetry.flush_ns.count(), 0u);
  for (const RelationTelemetry& r : telemetry.relations) {
    EXPECT_EQ(r.intra_evictions, 0u);
    EXPECT_EQ(r.flush_evictions, 0u);
    EXPECT_EQ(r.hfta_transfers, 0u);
    EXPECT_EQ(r.flush_occupancy.count(), 0u);
  }
  // Snapshots still build and serialize; they just carry zeros.
  const TelemetrySnapshot snap =
      BuildTelemetrySnapshot(**runtime, trace.schema());
  auto restored = TelemetrySnapshot::FromJsonLine(snap.ToJsonLine());
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(*restored == snap);
}

TEST(TelemetrySnapshotTest, FullLevelPopulatesHistograms) {
  const Trace trace = TestTrace(0xe55);
  auto runtime =
      ConfigurationRuntime::Make(trace.schema(), TestSpecs(trace.schema()),
                                 3.0);
  ASSERT_TRUE(runtime.ok());
  (*runtime)->ProcessTrace(trace);  // Default level: kFull.

  const TelemetrySnapshot snap =
      BuildTelemetrySnapshot(**runtime, trace.schema());
  EXPECT_GT(snap.batch_records.count(), 0u);
  EXPECT_GT(snap.batch_ns.count(), 0u);
  EXPECT_GT(snap.flush_ns.count(), 0u);
  EXPECT_EQ(snap.flush_ns.count(), snap.counters.epochs_flushed);
  // Every flush recorded each table's occupancy.
  for (const TableTelemetry& t : snap.tables) {
    EXPECT_EQ(t.flush_occupancy.count(), snap.counters.epochs_flushed)
        << t.relation;
  }
  // Eviction-reason tallies reconcile with the collision totals: every
  // collision evicts (intra), every flush drains occupied entries.
  for (const TableTelemetry& t : snap.tables) {
    EXPECT_EQ(t.intra_evictions + t.flush_evictions,
              t.collisions + t.flushed_entries)
        << t.relation;
  }
}

// ---------------------------------------------------------------------------
// Sliding-window pane-merge latency

TEST(SlidingWindowTelemetryTest, PaneMergeLatencyIsRecorded) {
  // Every WindowEndingAt call is one pane merge and contributes exactly one
  // latency sample (at the kFull compile tier; compiled out below it).
  Hfta hfta(1);
  GroupKey key;
  key.size = 1;
  key.values[0] = 7;
  hfta.Add(0, 0, key, AggregateState::FromCount(3));
  hfta.Add(0, 1, key, AggregateState::FromCount(4));
  auto view = SlidingWindowView::Make(&hfta, 0, 2);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->merge_latency().count(), 0u);
  EXPECT_EQ(view->WindowEndingAt(1).at(key).count, 7u);
  EXPECT_EQ(view->WindowEndingAt(0).at(key).count, 3u);
  EXPECT_EQ(view->WindowTotalCount(1), 7u);  // Merges via WindowEndingAt.
#if STREAMAGG_TELEMETRY_LEVEL >= 2
  EXPECT_EQ(view->merge_latency().count(), 3u);
#else
  EXPECT_EQ(view->merge_latency().count(), 0u);
#endif
}

}  // namespace
}  // namespace streamagg
