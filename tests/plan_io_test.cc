#include "core/plan_io.h"

#include <map>

#include <gtest/gtest.h>

#include "dsms/reference_aggregator.h"
#include "stream/trace_stats.h"
#include "stream/uniform_generator.h"

namespace streamagg {
namespace {

OptimizedPlan MakePlan(const Schema& schema,
                       const std::vector<QueryDef>& queries) {
  auto catalog = RelationCatalog::Synthetic(
      schema, [&] {
        std::map<uint32_t, uint64_t> counts;
        for (int i = 0; i < schema.num_attributes(); ++i) {
          counts[AttributeSet::Single(i).mask()] = 100 + 50 * i;
        }
        return counts;
      }());
  Optimizer optimizer;
  return *optimizer.Optimize(*catalog, queries, 30000.0);
}

TEST(PlanIoTest, RoundTripsCountOnlyPlan) {
  const Schema schema = *Schema::Default(4);
  const std::vector<QueryDef> queries = {
      QueryDef(*schema.ParseAttributeSet("AB")),
      QueryDef(*schema.ParseAttributeSet("BC")),
      QueryDef(*schema.ParseAttributeSet("CD"))};
  const OptimizedPlan plan = MakePlan(schema, queries);
  const std::string text = SerializePlan(schema, plan);
  auto loaded = DeserializePlan(schema, text);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString() << "\n" << text;
  EXPECT_EQ(loaded->config.ToString(), plan.config.ToString());
  ASSERT_EQ(loaded->buckets.size(), plan.buckets.size());
  for (size_t i = 0; i < plan.buckets.size(); ++i) {
    EXPECT_NEAR(loaded->buckets[i], plan.buckets[i],
                plan.buckets[i] * 1e-5 + 1e-6);
  }
  // Serializing the loaded plan reproduces the text (stable format).
  EXPECT_EQ(SerializePlan(schema, *loaded), text);
}

TEST(PlanIoTest, RoundTripsMetricsAndNamedSchema) {
  const Schema schema =
      *Schema::Make({"srcIP", "srcPort", "dstIP", "dstPort", "len"});
  const std::vector<QueryDef> queries = {
      QueryDef(*schema.ParseAttributeSet("dstIP,dstPort"),
               {MetricSpec{AggregateOp::kSum, 4}}),
      QueryDef(*schema.ParseAttributeSet("srcIP,dstIP"),
               {MetricSpec{AggregateOp::kMin, 4},
                MetricSpec{AggregateOp::kMax, 4}})};
  const OptimizedPlan plan = MakePlan(schema, queries);
  const std::string text = SerializePlan(schema, plan);
  auto loaded = DeserializePlan(schema, text);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString() << "\n" << text;
  const std::vector<QueryDef> round = loaded->config.QueryDefs();
  ASSERT_EQ(round.size(), 2u);
  EXPECT_EQ(round[0].metrics.size(), 1u);
  EXPECT_EQ(round[1].metrics.size(), 2u);
  EXPECT_EQ(round[0].metrics[0].op, AggregateOp::kSum);
  EXPECT_EQ(round[0].metrics[0].attr, 4);
}

TEST(PlanIoTest, LoadedPlanExecutesCorrectly) {
  const Schema schema = *Schema::Default(4);
  auto gen = std::move(UniformGenerator::Make(schema, 600, 33)).value();
  const Trace trace = Trace::Generate(*gen, 60000, 6.0);
  TraceStats stats(&trace);
  const RelationCatalog catalog =
      RelationCatalog::FromTrace(&stats, /*clustered=*/false);
  const std::vector<QueryDef> queries = {
      QueryDef(*schema.ParseAttributeSet("AB")),
      QueryDef(*schema.ParseAttributeSet("BC"))};
  Optimizer optimizer;
  const OptimizedPlan plan = *optimizer.Optimize(catalog, queries, 30000.0);

  auto loaded = DeserializePlan(schema, SerializePlan(schema, plan));
  ASSERT_TRUE(loaded.ok());
  auto runtime = ConfigurationRuntime::Make(
      schema, *loaded->ToRuntimeSpecs(), /*epoch=*/2.0);
  ASSERT_TRUE(runtime.ok());
  (*runtime)->ProcessTrace(trace);
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const auto expected =
        ComputeReferenceAggregate(trace, queries[qi].group_by, 2.0);
    std::string diagnostic;
    EXPECT_TRUE(AggregatesEqual(expected, (*runtime)->hfta(),
                                static_cast<int>(qi), &diagnostic))
        << diagnostic;
  }
}

TEST(PlanIoTest, RejectsCorruptDocuments) {
  const Schema schema = *Schema::Default(3);
  const std::vector<QueryDef> queries = {
      QueryDef(*schema.ParseAttributeSet("AB"))};
  const OptimizedPlan plan = MakePlan(schema, queries);
  const std::string good = SerializePlan(schema, plan);

  EXPECT_FALSE(DeserializePlan(schema, "").ok());
  EXPECT_FALSE(DeserializePlan(schema, "nonsense\n").ok());
  // Wrong schema.
  const Schema other = *Schema::Make({"x", "y", "z"});
  EXPECT_FALSE(DeserializePlan(other, good).ok());
  // Truncated (no buckets).
  const std::string no_buckets = good.substr(0, good.find("buckets"));
  EXPECT_FALSE(DeserializePlan(schema, no_buckets).ok());
  // Bucket count mismatch (the AB-only plan has exactly one node).
  std::string wrong_buckets = no_buckets + "buckets 5 5 5\n";
  EXPECT_FALSE(DeserializePlan(schema, wrong_buckets).ok());
  // Sub-minimum bucket count.
  std::string tiny_buckets = no_buckets + "buckets 0.5\n";
  EXPECT_FALSE(DeserializePlan(schema, tiny_buckets).ok());
  // Unknown line.
  EXPECT_FALSE(DeserializePlan(schema, good + "wat\n").ok());
  // Bad metric token.
  std::string bad_metric = good;
  const size_t pos = bad_metric.find("query AB -");
  ASSERT_NE(pos, std::string::npos);
  bad_metric.replace(pos, 10, "query AB frob:A");
  EXPECT_FALSE(DeserializePlan(schema, bad_metric).ok());
}

}  // namespace
}  // namespace streamagg
