// Flight recorder (obs/trace.h): ring wraparound and seqlock consistency,
// the runtime enable gate, Chrome trace-event JSON export (schema and an
// exact golden string), and end-to-end engine integration — a traced run
// must leave epoch/flush/barrier events behind.
//
// FlightRecorder is process-global: every test that enables it restores
// enabled=false and Clear()s before returning, so tests stay independent
// under any gtest ordering.

#include "obs/trace.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "obs/json.h"
#include "stream/uniform_generator.h"

namespace streamagg {
namespace {

TraceEvent MakeEvent(TraceEventType type, uint64_t start_ns,
                     uint64_t duration_ns, uint64_t epoch, uint32_t arg0 = 0,
                     uint32_t arg1 = 0, uint32_t arg2 = 0) {
  TraceEvent e;
  e.type = type;
  e.start_ns = start_ns;
  e.duration_ns = duration_ns;
  e.epoch = epoch;
  e.arg0 = arg0;
  e.arg1 = arg1;
  e.arg2 = arg2;
  return e;
}

// Restores the global recorder to its default (disabled, empty) state.
void ResetRecorder() {
  FlightRecorder::Instance().set_enabled(false);
  FlightRecorder::Instance().Clear();
}

// ---------------------------------------------------------------------------
// TraceRing

TEST(TraceRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(TraceRing(1, 0).capacity(), 8u);   // Min 8.
  EXPECT_EQ(TraceRing(8, 0).capacity(), 8u);
  EXPECT_EQ(TraceRing(9, 0).capacity(), 16u);
  EXPECT_EQ(TraceRing(4096, 0).capacity(), 4096u);
}

TEST(TraceRingTest, WrapAroundKeepsNewestEvents) {
  TraceRing ring(8, /*tid=*/3);
  // Append 3x the capacity; only the last `capacity` events survive.
  const uint64_t kTotal = 24;
  for (uint64_t i = 0; i < kTotal; ++i) {
    ring.Append(MakeEvent(TraceEventType::kEpochBoundary, /*start_ns=*/100 + i,
                          /*duration_ns=*/0, /*epoch=*/i));
  }
  EXPECT_EQ(ring.head(), kTotal);

  std::vector<TraceEvent> out;
  ring.Snapshot(&out);
  ASSERT_EQ(out.size(), ring.capacity());
  // Oldest-first, exactly epochs [16, 24), all stamped with the ring's tid.
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].epoch, kTotal - ring.capacity() + i);
    EXPECT_EQ(out[i].start_ns, 100 + kTotal - ring.capacity() + i);
    EXPECT_EQ(out[i].tid, 3u);
  }
}

TEST(TraceRingTest, SnapshotAppendsAndClearDrops) {
  TraceRing ring(8, 0);
  ring.Append(MakeEvent(TraceEventType::kRebalance, 10, 0, 1, 4));
  ring.Append(MakeEvent(TraceEventType::kEpochFlush, 20, 5, 1));

  std::vector<TraceEvent> out;
  out.push_back(MakeEvent(TraceEventType::kBarrier, 1, 1, 0));  // Pre-existing.
  ring.Snapshot(&out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[1].type, TraceEventType::kRebalance);
  EXPECT_EQ(out[1].arg0, 4u);
  EXPECT_EQ(out[2].type, TraceEventType::kEpochFlush);
  EXPECT_EQ(out[2].duration_ns, 5u);

  ring.Clear();
  out.clear();
  ring.Snapshot(&out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(ring.head(), 0u);
}

// The seqlock contract: a reader racing a writer never observes a torn
// event. Every appended event carries the invariant arg2 == arg0 + arg1
// and epoch == start_ns, so any mix of fields from two different writes is
// detectable. Run under TSan in CI (thread-sanitizer job).
TEST(TraceRingTest, ConcurrentSnapshotSeesOnlyConsistentEvents) {
  TraceRing ring(16, 9);
  std::atomic<bool> stop{false};

  std::thread writer([&ring, &stop] {
    uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const uint32_t a = static_cast<uint32_t>(i * 3 + 1);
      const uint32_t b = static_cast<uint32_t>(i * 7 + 2);
      ring.Append(MakeEvent(TraceEventType::kSortRunDrain, /*start_ns=*/i,
                            /*duration_ns=*/1, /*epoch=*/i, a, b, a + b));
      ++i;
    }
  });

  size_t total_seen = 0;
  int rounds = 0;
  while (rounds < 200) {
    std::vector<TraceEvent> out;
    ring.Snapshot(&out);
    if (out.empty()) {
      // Single-CPU schedulers can starve the writer; let it run.
      std::this_thread::yield();
      continue;
    }
    ++rounds;
    total_seen += out.size();
    for (const TraceEvent& e : out) {
      // No torn fields. (Slot *order* is not asserted: a writer that laps
      // the reader mid-scan can legitimately leave a newer event in an
      // earlier slot; per-event consistency is the seqlock's contract.)
      ASSERT_EQ(e.arg2, e.arg0 + e.arg1);
      ASSERT_EQ(e.epoch, e.start_ns);
      ASSERT_EQ(e.type, TraceEventType::kSortRunDrain);
    }
  }
  stop.store(true, std::memory_order_relaxed);
  writer.join();
  EXPECT_GT(total_seen, 0u);
}

// ---------------------------------------------------------------------------
// FlightRecorder

TEST(FlightRecorderTest, DisabledRecorderRecordsNothing) {
  ResetRecorder();
  FlightRecorder& rec = FlightRecorder::Instance();
  ASSERT_FALSE(rec.enabled());
  rec.RecordInstant(TraceEventType::kEpochBoundary, 1);
  rec.RecordSpan(TraceEventType::kEpochFlush, TelemetryNowNanos(), 1);
  EXPECT_TRUE(rec.Snapshot().empty());
}

TEST(FlightRecorderTest, RecordsInstantsAndSpansWhenEnabled) {
  ResetRecorder();
  FlightRecorder& rec = FlightRecorder::Instance();
  rec.set_enabled(true);

  rec.RecordInstant(TraceEventType::kShedPlanInstall, /*epoch=*/7,
                    /*arg0=*/500, /*arg1=*/2);
  const uint64_t start = TelemetryNowNanos();
  rec.RecordSpan(TraceEventType::kBarrier, start, /*epoch=*/7, /*arg0=*/1);

  const std::vector<TraceEvent> events = rec.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Snapshot() sorts by start time: the instant was recorded first.
  EXPECT_EQ(events[0].type, TraceEventType::kShedPlanInstall);
  EXPECT_EQ(events[0].duration_ns, 0u);  // Instant.
  EXPECT_EQ(events[0].epoch, 7u);
  EXPECT_EQ(events[0].arg0, 500u);
  EXPECT_EQ(events[1].type, TraceEventType::kBarrier);
  EXPECT_GT(events[1].duration_ns, 0u);  // Span, clamped to >= 1.
  EXPECT_EQ(events[1].start_ns, start);
  ResetRecorder();
}

TEST(FlightRecorderTest, ThreadsGetDistinctTidsAndRingsAreReused) {
  ResetRecorder();
  FlightRecorder& rec = FlightRecorder::Instance();
  rec.set_enabled(true);
  const size_t rings_before = rec.num_rings();

  // Two short-lived threads record one event each, sequentially: the second
  // must reuse the first's freed ring (under a fresh tid), so the registry
  // grows by at most one ring total.
  for (int i = 0; i < 2; ++i) {
    std::thread t([&rec, i] {
      rec.RecordInstant(TraceEventType::kRebalance, /*epoch=*/uint64_t(i),
                        /*arg0=*/uint32_t(i));
    });
    t.join();
  }
  EXPECT_LE(rec.num_rings(), rings_before + 1);

  const std::vector<TraceEvent> events = rec.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Distinct compact tids even though the ring was reused.
  EXPECT_NE(events[0].tid, events[1].tid);
  ResetRecorder();
}

// ---------------------------------------------------------------------------
// Chrome trace-event export

TEST(TraceToChromeJsonTest, SchemaParsesAndCarriesEventFields) {
  std::vector<TraceEvent> events;
  events.push_back(MakeEvent(TraceEventType::kEpochFlush, /*start_ns=*/5000,
                             /*duration_ns=*/1500, /*epoch=*/2, /*arg0=*/1));
  events.push_back(MakeEvent(TraceEventType::kBarrierAck, /*start_ns=*/9000,
                             /*duration_ns=*/0, /*epoch=*/2, /*arg0=*/1,
                             /*arg1=*/1));
  events.push_back(MakeEvent(TraceEventType::kTrendAssess, /*start_ns=*/12000,
                             /*duration_ns=*/0, /*epoch=*/3, /*arg0=*/1,
                             /*arg1=*/static_cast<uint32_t>(-1),
                             /*arg2=*/125));
  events[1].tid = 4;

  auto parsed = JsonValue::Parse(TraceToChromeJson(events));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_TRUE(parsed->is_object());
  EXPECT_EQ(parsed->Get("displayTimeUnit").AsString(), "ms");
  const JsonValue& list = parsed->Get("traceEvents");
  ASSERT_TRUE(list.is_array());
  ASSERT_EQ(list.size(), 3u);

  // Span: ph "X" with dur; timestamps rebased to the earliest event and
  // converted to microseconds.
  const JsonValue& flush = list.at(0);
  EXPECT_EQ(flush.Get("name").AsString(), "epoch_flush");
  EXPECT_EQ(flush.Get("cat").AsString(), "streamagg");
  EXPECT_EQ(flush.Get("ph").AsString(), "X");
  EXPECT_DOUBLE_EQ(flush.Get("ts").AsDouble(), 0.0);
  EXPECT_DOUBLE_EQ(flush.Get("dur").AsDouble(), 1.5);
  EXPECT_EQ(flush.Get("pid").AsUint64(), 1u);
  EXPECT_EQ(flush.Get("args").Get("epoch").AsUint64(), 2u);
  EXPECT_EQ(flush.Get("args").Get("shard").AsUint64(), 1u);

  // Instant: ph "i", thread scope, no dur.
  const JsonValue& ack = list.at(1);
  EXPECT_EQ(ack.Get("name").AsString(), "barrier_ack");
  EXPECT_EQ(ack.Get("ph").AsString(), "i");
  EXPECT_EQ(ack.Get("s").AsString(), "t");
  EXPECT_FALSE(ack.Has("dur"));
  EXPECT_DOUBLE_EQ(ack.Get("ts").AsDouble(), 4.0);
  EXPECT_EQ(ack.Get("tid").AsUint64(), 4u);
  EXPECT_EQ(ack.Get("args").Get("kind").AsString(), "quiesce");

  // Type-specific args spell out signed fields correctly.
  const JsonValue& trend = list.at(2);
  EXPECT_TRUE(trend.Get("args").Get("should_replan").AsBool());
  EXPECT_EQ(trend.Get("args").Get("max_table").AsInt64(), -1);
  EXPECT_EQ(trend.Get("args").Get("drift_permille").AsUint64(), 125u);
}

TEST(TraceToChromeJsonTest, GoldenTwoEventTrace) {
  // Dump() is deterministic (insertion-ordered keys, %.17g doubles, PRIu64
  // integers), so the full export is an exact string.
  std::vector<TraceEvent> events;
  events.push_back(MakeEvent(TraceEventType::kEpochFlush, /*start_ns=*/1000,
                             /*duration_ns=*/2500, /*epoch=*/3, /*arg0=*/1));
  events[0].tid = 7;
  events.push_back(MakeEvent(TraceEventType::kEpochBoundary,
                             /*start_ns=*/4000, /*duration_ns=*/0,
                             /*epoch=*/3, /*arg0=*/4));
  events[1].tid = 8;

  EXPECT_EQ(
      TraceToChromeJson(events),
      "{\"traceEvents\":["
      "{\"name\":\"epoch_flush\",\"cat\":\"streamagg\",\"ph\":\"X\","
      "\"ts\":0,\"dur\":2.5,\"pid\":1,\"tid\":7,"
      "\"args\":{\"epoch\":3,\"shard\":1}},"
      "{\"name\":\"epoch_boundary\",\"cat\":\"streamagg\",\"ph\":\"i\","
      "\"ts\":3,\"s\":\"t\",\"pid\":1,\"tid\":8,"
      "\"args\":{\"epoch\":3,\"next_epoch\":4}}"
      "],\"displayTimeUnit\":\"ms\"}");
}

TEST(TraceToChromeJsonTest, EmptyEventListIsValidJson) {
  EXPECT_EQ(TraceToChromeJson(std::span<const TraceEvent>()),
            "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}");
}

// ---------------------------------------------------------------------------
// Engine integration

Trace UniformTrace(uint64_t groups, size_t n, uint64_t seed) {
  auto gen =
      std::move(UniformGenerator::Make(*Schema::Default(4), groups, seed))
          .value();
  return Trace::Generate(*gen, n, 10.0);
}

std::set<TraceEventType> EventTypes(const std::vector<TraceEvent>& events) {
  std::set<TraceEventType> types;
  for (const TraceEvent& e : events) types.insert(e.type);
  return types;
}

TEST(FlightRecorderEngineTest, SerialRunRecordsEpochLifecycle) {
  ResetRecorder();
  FlightRecorder::Instance().set_enabled(true);

  const Trace trace = UniformTrace(400, 60000, 11);
  StreamAggEngine::Options options;
  options.memory_words = 30000.0;
  options.sample_size = 20000;
  options.epoch_seconds = 2.0;
  options.clustered = false;
  auto engine = StreamAggEngine::FromQueryTexts(
      trace.schema(),
      {"select A, B, count(*) from R group by A, B, time/2"}, options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  for (const Record& r : trace.records()) {
    ASSERT_TRUE((*engine)->Process(r).ok());
  }
  ASSERT_TRUE((*engine)->Finish().ok());

  const std::vector<TraceEvent> events = FlightRecorder::Instance().Snapshot();
  const std::set<TraceEventType> types = EventTypes(events);
  // A 10-second trace over 2-second epochs crosses several boundaries, each
  // flushing the LFTA tables.
  EXPECT_TRUE(types.count(TraceEventType::kEpochBoundary));
  EXPECT_TRUE(types.count(TraceEventType::kEpochFlush));
  for (const TraceEvent& e : events) {
    if (e.type == TraceEventType::kEpochFlush) {
      EXPECT_GT(e.duration_ns, 0u);  // Flushes are spans.
      EXPECT_EQ(e.arg0, 0u);         // Serial runtime is trace id 0.
    }
  }
  ResetRecorder();
}

TEST(FlightRecorderEngineTest, ShardedRunRecordsBarriersAndAcks) {
  ResetRecorder();
  FlightRecorder::Instance().set_enabled(true);

  const Trace trace = UniformTrace(400, 60000, 13);
  StreamAggEngine::Options options;
  options.memory_words = 30000.0;
  options.sample_size = 20000;
  options.epoch_seconds = 2.0;
  options.clustered = false;
  options.num_shards = 2;
  // Epoch snapshots quiesce the shard matrix at each boundary — that's the
  // quiesce-barrier path this test pins down.
  options.telemetry_epoch_snapshots = true;
  auto engine = StreamAggEngine::FromQueryTexts(
      trace.schema(),
      {"select A, B, count(*) from R group by A, B, time/2"}, options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  for (const Record& r : trace.records()) {
    ASSERT_TRUE((*engine)->Process(r).ok());
  }
  ASSERT_TRUE((*engine)->Finish().ok());

  const std::vector<TraceEvent> events = FlightRecorder::Instance().Snapshot();
  const std::set<TraceEventType> types = EventTypes(events);
  EXPECT_TRUE(types.count(TraceEventType::kBarrier));
  EXPECT_TRUE(types.count(TraceEventType::kBarrierAck));
  EXPECT_TRUE(types.count(TraceEventType::kEpochFlush));

  // Every barrier ack names a valid shard; the quiesce barrier from
  // Finish() must be present (kind = 1).
  bool saw_quiesce = false;
  for (const TraceEvent& e : events) {
    if (e.type == TraceEventType::kBarrierAck) {
      EXPECT_LT(e.arg0, 2u);
      if (e.arg1 == 1) saw_quiesce = true;
    }
  }
  EXPECT_TRUE(saw_quiesce);
  // Both shard workers recorded flushes under their own trace ids.
  std::set<uint32_t> flush_shards;
  for (const TraceEvent& e : events) {
    if (e.type == TraceEventType::kEpochFlush) flush_shards.insert(e.arg0);
  }
  EXPECT_EQ(flush_shards, (std::set<uint32_t>{0, 1}));
  ResetRecorder();
}

}  // namespace
}  // namespace streamagg
