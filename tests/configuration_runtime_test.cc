#include "dsms/configuration_runtime.h"

#include <gtest/gtest.h>

#include "dsms/reference_aggregator.h"
#include "stream/flow_generator.h"
#include "stream/uniform_generator.h"

namespace streamagg {
namespace {

// Builds specs for a chain/tree described as (attrs, parent, is_query,
// query_index) tuples.
RuntimeRelationSpec Spec(AttributeSet attrs, uint64_t buckets, int parent,
                         int query_index) {
  RuntimeRelationSpec s;
  s.attrs = attrs;
  s.num_buckets = buckets;
  s.parent = parent;
  s.query_index = query_index;
  s.is_query = query_index >= 0;
  return s;
}

Trace UniformTrace(int attrs, uint64_t groups, size_t n, double duration,
                   uint64_t seed) {
  auto gen = UniformGenerator::Make(*Schema::Default(attrs), groups, seed);
  return Trace::Generate(**gen, n, duration);
}

void ExpectCorrectResults(const Trace& trace,
                          const std::vector<RuntimeRelationSpec>& specs,
                          const std::vector<AttributeSet>& queries,
                          double epoch_seconds) {
  auto runtime = ConfigurationRuntime::Make(trace.schema(), specs,
                                            epoch_seconds);
  ASSERT_TRUE(runtime.ok()) << runtime.status().ToString();
  (*runtime)->ProcessTrace(trace);
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const auto expected =
        ComputeReferenceAggregate(trace, queries[qi], epoch_seconds);
    std::string diagnostic;
    EXPECT_TRUE(AggregatesEqual(expected, (*runtime)->hfta(),
                                static_cast<int>(qi), &diagnostic))
        << "query " << qi << ": " << diagnostic;
  }
}

TEST(ConfigurationRuntimeTest, SingleQueryMatchesReference) {
  const Trace trace = UniformTrace(3, 100, 20000, 10.0, 1);
  const AttributeSet a = AttributeSet::Single(0);
  ExpectCorrectResults(trace, {Spec(a, 37, -1, 0)}, {a}, 0.0);
}

TEST(ConfigurationRuntimeTest, SingleQueryWithEpochs) {
  const Trace trace = UniformTrace(3, 100, 20000, 10.0, 2);
  const AttributeSet ab = AttributeSet::Of({0, 1});
  ExpectCorrectResults(trace, {Spec(ab, 64, -1, 0)}, {ab}, 1.0);
}

TEST(ConfigurationRuntimeTest, ThreeIndependentQueries) {
  const Trace trace = UniformTrace(3, 200, 30000, 6.0, 3);
  const AttributeSet a = AttributeSet::Single(0);
  const AttributeSet b = AttributeSet::Single(1);
  const AttributeSet c = AttributeSet::Single(2);
  ExpectCorrectResults(
      trace,
      {Spec(a, 31, -1, 0), Spec(b, 17, -1, 1), Spec(c, 53, -1, 2)},
      {a, b, c}, 2.0);
}

TEST(ConfigurationRuntimeTest, PhantomFeedsThreeQueries) {
  // The paper's Figure 2: phantom ABC feeds A, B, C.
  const Trace trace = UniformTrace(3, 300, 30000, 6.0, 4);
  const AttributeSet abc = AttributeSet::Of({0, 1, 2});
  const AttributeSet a = AttributeSet::Single(0);
  const AttributeSet b = AttributeSet::Single(1);
  const AttributeSet c = AttributeSet::Single(2);
  ExpectCorrectResults(trace,
                       {Spec(abc, 128, -1, -1), Spec(a, 16, 0, 0),
                        Spec(b, 16, 0, 1), Spec(c, 16, 0, 2)},
                       {a, b, c}, 2.0);
}

TEST(ConfigurationRuntimeTest, DeepTreeFigure3c) {
  // ABCD(AB BCD(BC BD CD)) — Figure 3(c).
  const Trace trace = UniformTrace(4, 500, 40000, 8.0, 5);
  const AttributeSet abcd = AttributeSet::Of({0, 1, 2, 3});
  const AttributeSet bcd = AttributeSet::Of({1, 2, 3});
  const AttributeSet ab = AttributeSet::Of({0, 1});
  const AttributeSet bc = AttributeSet::Of({1, 2});
  const AttributeSet bd = AttributeSet::Of({1, 3});
  const AttributeSet cd = AttributeSet::Of({2, 3});
  ExpectCorrectResults(trace,
                       {Spec(abcd, 200, -1, -1), Spec(ab, 40, 0, 0),
                        Spec(bcd, 100, 0, -1), Spec(bc, 30, 2, 1),
                        Spec(bd, 30, 2, 2), Spec(cd, 30, 2, 3)},
                       {ab, bc, bd, cd}, 2.0);
}

TEST(ConfigurationRuntimeTest, TinyTablesStillCorrect) {
  // Extreme collision pressure (1-2 buckets) must not lose counts.
  const Trace trace = UniformTrace(3, 300, 10000, 5.0, 6);
  const AttributeSet abc = AttributeSet::Of({0, 1, 2});
  const AttributeSet a = AttributeSet::Single(0);
  const AttributeSet b = AttributeSet::Single(1);
  ExpectCorrectResults(
      trace, {Spec(abc, 2, -1, -1), Spec(a, 1, 0, 0), Spec(b, 2, 0, 1)},
      {a, b}, 1.0);
}

TEST(ConfigurationRuntimeTest, NonLeafQueryReceivesResultsToo) {
  // Query AB feeds query A: AB must both deliver to the HFTA and feed A.
  const Trace trace = UniformTrace(2, 150, 20000, 4.0, 7);
  const AttributeSet ab = AttributeSet::Of({0, 1});
  const AttributeSet a = AttributeSet::Single(0);
  ExpectCorrectResults(trace, {Spec(ab, 64, -1, 0), Spec(a, 16, 0, 1)},
                       {ab, a}, 1.0);
}

TEST(ConfigurationRuntimeTest, ClusteredFlowDataMatchesReference) {
  auto gen = FlowGenerator::MakePaperTrace({});
  ASSERT_TRUE(gen.ok());
  const Trace trace = Trace::Generate(**gen, 100000, 62.0);
  const AttributeSet abcd = AttributeSet::Of({0, 1, 2, 3});
  const AttributeSet ab = AttributeSet::Of({0, 1});
  const AttributeSet cd = AttributeSet::Of({2, 3});
  ExpectCorrectResults(
      trace,
      {Spec(abcd, 1024, -1, -1), Spec(ab, 256, 0, 0), Spec(cd, 256, 0, 1)},
      {ab, cd}, 10.0);
}

TEST(ConfigurationRuntimeTest, CountersAddUp) {
  const Trace trace = UniformTrace(3, 100, 5000, 5.0, 8);
  const AttributeSet abc = AttributeSet::Of({0, 1, 2});
  const AttributeSet a = AttributeSet::Single(0);
  auto runtime = ConfigurationRuntime::Make(
      trace.schema(), {Spec(abc, 64, -1, -1), Spec(a, 16, 0, 0)}, 1.0);
  ASSERT_TRUE(runtime.ok());
  (*runtime)->ProcessTrace(trace);
  const RuntimeCounters& c = (*runtime)->counters();
  EXPECT_EQ(c.records, trace.size());
  // Every record probes exactly one raw table; cascades add more.
  EXPECT_GE(c.intra_probes, trace.size());
  EXPECT_EQ(c.epochs_flushed, 5u);
  // All HFTA transfers are accounted in the counters.
  EXPECT_EQ(c.intra_transfers + c.flush_transfers,
            (*runtime)->hfta().transfers());
  // Total counts delivered to the query equal the record count.
  uint64_t delivered = 0;
  for (uint64_t epoch : (*runtime)->hfta().Epochs(0)) {
    delivered += (*runtime)->hfta().TotalCount(0, epoch);
  }
  EXPECT_EQ(delivered, trace.size());
  // Memory accounting: 64*(3+1) + 16*(1+1) words.
  EXPECT_EQ((*runtime)->TotalMemoryWords(), 64u * 4 + 16u * 2);
}

TEST(ConfigurationRuntimeTest, ValidatesSpecs) {
  const Schema schema = *Schema::Default(3);
  const AttributeSet a = AttributeSet::Single(0);
  const AttributeSet ab = AttributeSet::Of({0, 1});
  // Empty specs.
  EXPECT_FALSE(ConfigurationRuntime::Make(schema, {}, 0.0).ok());
  // Zero buckets.
  EXPECT_FALSE(
      ConfigurationRuntime::Make(schema, {Spec(a, 0, -1, 0)}, 0.0).ok());
  // Parent after child.
  EXPECT_FALSE(ConfigurationRuntime::Make(
                   schema, {Spec(a, 4, 1, 0), Spec(ab, 4, -1, -1)}, 0.0)
                   .ok());
  // Child not a subset of parent.
  const AttributeSet c = AttributeSet::Single(2);
  EXPECT_FALSE(ConfigurationRuntime::Make(
                   schema, {Spec(ab, 4, -1, -1), Spec(c, 4, 0, 0)}, 0.0)
                   .ok());
  // Phantom with query_index.
  RuntimeRelationSpec bad = Spec(ab, 4, -1, 0);
  bad.is_query = false;
  EXPECT_FALSE(ConfigurationRuntime::Make(schema, {bad}, 0.0).ok());
  // Duplicate query_index.
  EXPECT_FALSE(ConfigurationRuntime::Make(
                   schema, {Spec(ab, 4, -1, 0), Spec(a, 4, 0, 0)}, 0.0)
                   .ok());
}

}  // namespace
}  // namespace streamagg
