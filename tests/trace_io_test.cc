#include "stream/trace_io.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "stream/flow_generator.h"
#include "stream/uniform_generator.h"

namespace streamagg {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

void WriteFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs(content.c_str(), f);
  std::fclose(f);
}

TEST(TraceIoTest, RoundTripsPlainTrace) {
  auto gen = UniformGenerator::Make(*Schema::Default(3), 50, 1);
  ASSERT_TRUE(gen.ok());
  const Trace original = Trace::Generate(**gen, 500, 5.0);
  const std::string path = TempPath("plain_trace.csv");
  ASSERT_TRUE(SaveTraceCsv(original, path).ok());

  auto loaded = LoadTraceCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), original.size());
  EXPECT_EQ(loaded->schema().names(), original.schema().names());
  EXPECT_FALSE(loaded->has_flow_ids());
  for (size_t i = 0; i < original.size(); ++i) {
    for (int a = 0; a < 3; ++a) {
      ASSERT_EQ(loaded->record(i).values[a], original.record(i).values[a])
          << "record " << i;
    }
    ASSERT_NEAR(loaded->record(i).timestamp, original.record(i).timestamp,
                1e-6);
  }
}

TEST(TraceIoTest, RoundTripsFlowTrace) {
  auto gen = FlowGenerator::MakePaperTrace({});
  ASSERT_TRUE(gen.ok());
  const Trace original = Trace::Generate(**gen, 2000, 10.0);
  const std::string path = TempPath("flow_trace.csv");
  ASSERT_TRUE(SaveTraceCsv(original, path).ok());

  auto loaded = LoadTraceCsv(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_TRUE(loaded->has_flow_ids());
  EXPECT_EQ(loaded->flow_ids(), original.flow_ids());
}

TEST(TraceIoTest, PreservesNamedSchemas) {
  const Schema schema = *Schema::Make({"srcIP", "dstIP"});
  Trace trace(schema);
  Record r;
  r.values[0] = 10;
  r.values[1] = 20;
  r.timestamp = 1.5;
  trace.Append(r);
  const std::string path = TempPath("named_trace.csv");
  ASSERT_TRUE(SaveTraceCsv(trace, path).ok());
  auto loaded = LoadTraceCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->schema().name(0), "srcIP");
  EXPECT_EQ(loaded->schema().name(1), "dstIP");
}

TEST(TraceIoTest, RejectsMissingFile) {
  auto result = LoadTraceCsv(TempPath("does_not_exist.csv"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(TraceIoTest, RejectsBadHeader) {
  const std::string path = TempPath("bad_header.csv");
  WriteFile(path, "time,flow,A\n0.0,0,1\n");
  EXPECT_FALSE(LoadTraceCsv(path).ok());
}

TEST(TraceIoTest, RejectsWrongFieldCount) {
  const std::string path = TempPath("bad_fields.csv");
  WriteFile(path, "timestamp,flow_id,A,B\n0.0,0,1\n");
  EXPECT_FALSE(LoadTraceCsv(path).ok());
}

TEST(TraceIoTest, RejectsNonNumericValues) {
  const std::string path = TempPath("bad_value.csv");
  WriteFile(path, "timestamp,flow_id,A\n0.0,0,xyz\n");
  EXPECT_FALSE(LoadTraceCsv(path).ok());
}

TEST(TraceIoTest, RejectsMixedFlowAndNonFlowRecords) {
  const std::string path = TempPath("mixed_flow.csv");
  WriteFile(path, "timestamp,flow_id,A\n0.0,1,5\n0.1,0,6\n");
  EXPECT_FALSE(LoadTraceCsv(path).ok());
  const std::string path2 = TempPath("mixed_flow2.csv");
  WriteFile(path2, "timestamp,flow_id,A\n0.0,0,5\n0.1,2,6\n");
  EXPECT_FALSE(LoadTraceCsv(path2).ok());
}

TEST(TraceIoTest, EmptyFileIsRejected) {
  const std::string path = TempPath("empty.csv");
  WriteFile(path, "");
  EXPECT_FALSE(LoadTraceCsv(path).ok());
}

}  // namespace
}  // namespace streamagg
