#include "core/space_allocation.h"

#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

namespace streamagg {
namespace {

class SpaceAllocationTest : public ::testing::Test {
 protected:
  SpaceAllocationTest()
      : schema_(*Schema::Default(4)),
        catalog_(*RelationCatalog::Synthetic(
            schema_,
            {
                {Set("A").mask(), 552},
                {Set("B").mask(), 600},
                {Set("C").mask(), 700},
                {Set("D").mask(), 800},
                {Set("AB").mask(), 1846},
                {Set("AC").mask(), 1700},
                {Set("BC").mask(), 1800},
                {Set("BD").mask(), 1900},
                {Set("CD").mask(), 2000},
                {Set("ABC").mask(), 2117},
                {Set("BCD").mask(), 2300},
                {Set("ABCD").mask(), 2837},
            })),
        precise_(),
        cost_model_(&catalog_, &precise_, CostParams{1.0, 50.0}),
        allocator_(&cost_model_) {}

  AttributeSet Set(const std::string& spec) {
    return *schema_.ParseAttributeSet(spec);
  }

  Configuration Config(const std::string& text) {
    return *Configuration::Parse(schema_, text);
  }

  double MemoryWordsUsed(const Configuration& config,
                         const std::vector<double>& buckets) {
    double words = 0.0;
    for (int i = 0; i < config.num_nodes(); ++i) {
      words += buckets[i] * (config.node(i).attrs.Count() + 1);
    }
    return words;
  }

  Schema schema_;
  RelationCatalog catalog_;
  PreciseCollisionModel precise_;
  CostModel cost_model_;
  SpaceAllocator allocator_;
};

TEST_F(SpaceAllocationTest, EverySchemeUsesTheBudgetExactly) {
  const Configuration config = Config("ABCD(AB BCD(BC BD CD))");
  for (AllocationScheme scheme :
       {AllocationScheme::kSL, AllocationScheme::kSR, AllocationScheme::kPL,
        AllocationScheme::kPR, AllocationScheme::kES}) {
    auto buckets = allocator_.Allocate(config, 40000.0, scheme);
    ASSERT_TRUE(buckets.ok()) << AllocationSchemeName(scheme);
    for (double b : *buckets) EXPECT_GE(b, 1.0);
    EXPECT_NEAR(MemoryWordsUsed(config, *buckets), 40000.0, 40000.0 * 0.02)
        << AllocationSchemeName(scheme);
  }
}

TEST_F(SpaceAllocationTest, NoPhantomOptimumIsSqrtProportional) {
  // Section 5.1: with no phantoms the optimal words are proportional to
  // sqrt(g * h); ES must agree with the analytic optimum within ~1%
  // (paper Section 6.2.1).
  const Configuration config = Config("A B C D");
  auto es = allocator_.Allocate(config, 20000.0, AllocationScheme::kES);
  ASSERT_TRUE(es.ok());
  const double es_cost = cost_model_.PerRecordCost(config, *es);

  std::vector<double> weights;
  for (int i = 0; i < config.num_nodes(); ++i) {
    weights.push_back(catalog_.Get(config.node(i).attrs).EffectiveWeight());
  }
  const std::vector<double> words =
      SpaceAllocator::SqrtProportionalWords(weights, 20000.0);
  std::vector<double> buckets(words.size());
  for (size_t i = 0; i < words.size(); ++i) {
    buckets[i] = words[i] / (config.node(i).attrs.Count() + 1);
  }
  const double analytic_cost = cost_model_.PerRecordCost(config, buckets);
  EXPECT_NEAR(analytic_cost, es_cost, 0.02 * es_cost);
}

TEST_F(SpaceAllocationTest, TwoLevelOptimalBeatsOrMatchesES) {
  // One phantom feeding all queries (Equations 20/21): SL reproduces the
  // analytic optimum, and ES lands within ~2%.
  const Configuration config = Config("ABC(A B C)");
  auto sl = allocator_.Allocate(config, 20000.0, AllocationScheme::kSL);
  auto es = allocator_.Allocate(config, 20000.0, AllocationScheme::kES);
  ASSERT_TRUE(sl.ok());
  ASSERT_TRUE(es.ok());
  const double sl_cost = cost_model_.PerRecordCost(config, *sl);
  const double es_cost = cost_model_.PerRecordCost(config, *es);
  EXPECT_NEAR(sl_cost, es_cost, 0.03 * es_cost);
}

TEST_F(SpaceAllocationTest, TwoLevelSplitGivesPhantomMoreThanHalf) {
  // Paper Section 5.1: b0 always takes more than half the available space.
  const std::vector<double> child_weights = {1846.0 * 3, 1800.0 * 3,
                                             2000.0 * 3};
  const std::vector<double> split =
      allocator_.TwoLevelOptimalWords(child_weights, 50000.0);
  ASSERT_EQ(split.size(), 4u);
  EXPECT_GT(split[0], 25000.0);
  double total = 0.0;
  for (double w : split) {
    EXPECT_GT(w, 0.0);
    total += w;
  }
  EXPECT_NEAR(total, 50000.0, 1e-6);
}

TEST_F(SpaceAllocationTest, TwoLevelSplitIsALocalOptimum) {
  // Equations 20/21 solve the first-order conditions of the linearized
  // (x = mu g/b) cost. Verify numerically: perturbing any child's share by
  // +-2% (compensated by the phantom) must not reduce the linearized cost.
  const std::vector<double> child_weights = {1846.0 * 3, 1800.0 * 3,
                                             2000.0 * 3, 1900.0 * 3};
  const double memory = 40000.0;
  const std::vector<double> split =
      allocator_.TwoLevelOptimalWords(child_weights, memory);
  const double mu = 0.354;
  const double c1 = 1.0, c2 = 50.0;
  auto linear_cost = [&](const std::vector<double>& words) {
    // e = c1 + f x0 c1 + x0 sum_i x_i c2 with x = mu * G / words.
    const double f = static_cast<double>(child_weights.size());
    const double x0 = mu * (2837.0 * 5) / words[0];
    double sum = 0.0;
    for (size_t i = 0; i < child_weights.size(); ++i) {
      sum += mu * child_weights[i] / words[i + 1];
    }
    return c1 + f * x0 * c1 + x0 * sum * c2;
  };
  const double base = linear_cost(split);
  for (size_t child = 1; child < split.size(); ++child) {
    for (double delta : {-0.02, 0.02}) {
      std::vector<double> perturbed = split;
      const double moved = split[child] * delta;
      perturbed[child] += moved;
      perturbed[0] -= moved;
      EXPECT_GE(linear_cost(perturbed), base - 1e-9)
          << "child " << child << " delta " << delta;
    }
  }
}

TEST_F(SpaceAllocationTest, TwoLevelSplitChildrenScaleWithSqrtWeight) {
  const std::vector<double> split =
      allocator_.TwoLevelOptimalWords({400.0, 1600.0}, 30000.0);
  // Children words proportional to sqrt weights: sqrt(1600)/sqrt(400) = 2.
  EXPECT_NEAR(split[2] / split[1], 2.0, 1e-9);
}

TEST_F(SpaceAllocationTest, SupernodeHeuristicsBeatNaiveOnDeepConfigs) {
  // The paper's headline finding (Figures 9/10, Table 2): SL and SR track
  // ES much better than PL/PR on multi-level configurations.
  for (const char* text : {"(ABCD(ABC(A BC(B C)) D))",
                           "(ABCD(AB BCD(BC BD CD)))", "(ABC(AC(A C) B))"}) {
    const Configuration config = *Configuration::Parse(schema_, text);
    double cost[5];
    const AllocationScheme schemes[] = {
        AllocationScheme::kSL, AllocationScheme::kSR, AllocationScheme::kPL,
        AllocationScheme::kPR, AllocationScheme::kES};
    for (int s = 0; s < 5; ++s) {
      auto buckets = allocator_.Allocate(config, 40000.0, schemes[s]);
      ASSERT_TRUE(buckets.ok()) << text;
      cost[s] = cost_model_.PerRecordCost(config, *buckets);
    }
    const double es = cost[4];
    EXPECT_LE(es, cost[0] * (1.0 + 1e-9)) << text;  // ES is the oracle.
    EXPECT_LT(cost[0], es * 1.15) << text;          // SL within 15% of ES.
    EXPECT_LT(cost[0], cost[2] + 1e-12) << text;    // SL no worse than PL.
  }
}

TEST_F(SpaceAllocationTest, AllocationFailsWhenMemoryTooSmall) {
  const Configuration config = Config("ABCD(AB BCD(BC BD CD))");
  // 7 relations need at least sum(h) words; 10 words cannot host them.
  auto result = allocator_.Allocate(config, 10.0, AllocationScheme::kSL);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(SpaceAllocationTest, RejectsDegenerateArguments) {
  const Configuration config = Config("A B");
  EXPECT_FALSE(allocator_.Allocate(config, 0.0, AllocationScheme::kSL).ok());
  EXPECT_FALSE(allocator_.Allocate(config, -5.0, AllocationScheme::kPL).ok());
}

TEST_F(SpaceAllocationTest, SingleRelationGetsEverything) {
  const Configuration config = Config("A");
  for (AllocationScheme scheme :
       {AllocationScheme::kSL, AllocationScheme::kPL, AllocationScheme::kES}) {
    auto buckets = allocator_.Allocate(config, 1000.0, scheme);
    ASSERT_TRUE(buckets.ok());
    EXPECT_NEAR((*buckets)[0], 500.0, 5.0);  // 1000 words / h=2.
  }
}

TEST_F(SpaceAllocationTest, PLEqualizesBucketPerGroupRatios) {
  const Configuration config = Config("A B C D");
  auto buckets = allocator_.Allocate(config, 20000.0, AllocationScheme::kPL);
  ASSERT_TRUE(buckets.ok());
  // Words proportional to g: word share of A = g_A / sum(g).
  const double total_g = 552 + 600 + 700 + 800;
  const double expected_words_a = 20000.0 * 552 / total_g;
  EXPECT_NEAR((*buckets)[0] * 2.0, expected_words_a, 1.0);
}

TEST_F(SpaceAllocationTest, PRUsesSquareRoots) {
  const Configuration config = Config("A B C D");
  auto buckets = allocator_.Allocate(config, 20000.0, AllocationScheme::kPR);
  ASSERT_TRUE(buckets.ok());
  const double total = std::sqrt(552.0) + std::sqrt(600.0) +
                       std::sqrt(700.0) + std::sqrt(800.0);
  const double expected_words_a = 20000.0 * std::sqrt(552.0) / total;
  EXPECT_NEAR((*buckets)[0] * 2.0, expected_words_a, 1.0);
}

class AllocationBudgetSweep
    : public SpaceAllocationTest,
      public ::testing::WithParamInterface<double> {};

TEST_P(AllocationBudgetSweep, SLStaysCloseToESAcrossBudgets) {
  // Paper Table 2: SL's average error vs ES stays in the low single digits
  // across M = 20k..100k.
  const double memory = GetParam();
  const Configuration config = Config("(ABCD(AB BCD(BC BD CD)))");
  auto sl = allocator_.Allocate(config, memory, AllocationScheme::kSL);
  auto es = allocator_.Allocate(config, memory, AllocationScheme::kES);
  ASSERT_TRUE(sl.ok());
  ASSERT_TRUE(es.ok());
  const double sl_cost = cost_model_.PerRecordCost(config, *sl);
  const double es_cost = cost_model_.PerRecordCost(config, *es);
  EXPECT_LT(sl_cost, es_cost * 1.20);
}

INSTANTIATE_TEST_SUITE_P(PaperMemorySizes, AllocationBudgetSweep,
                         ::testing::Values(20000.0, 40000.0, 60000.0, 80000.0,
                                           100000.0));

}  // namespace
}  // namespace streamagg
