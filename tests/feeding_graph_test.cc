#include "core/feeding_graph.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace streamagg {
namespace {

Schema FourAttrs() { return *Schema::Default(4); }

AttributeSet Set(const Schema& schema, const std::string& spec) {
  return *schema.ParseAttributeSet(spec);
}

TEST(FeedingGraphTest, PaperFigure4) {
  // Queries {AB, BC, BD, CD} yield phantoms ABC, ABD, BCD, ABCD (Figure 4).
  const Schema schema = FourAttrs();
  auto graph = FeedingGraph::Build(
      schema, {Set(schema, "AB"), Set(schema, "BC"), Set(schema, "BD"),
               Set(schema, "CD")});
  ASSERT_TRUE(graph.ok());
  const auto& phantoms = graph->phantoms();
  std::vector<std::string> names;
  for (AttributeSet p : phantoms) names.push_back(schema.FormatAttributeSet(p));
  std::sort(names.begin(), names.end());
  ASSERT_EQ(names.size(), 4u);
  EXPECT_EQ(names[0], "ABC");
  EXPECT_EQ(names[1], "ABCD");
  EXPECT_EQ(names[2], "ABD");
  EXPECT_EQ(names[3], "BCD");
}

TEST(FeedingGraphTest, SingletonQueriesYieldAllCombinations) {
  // Queries {A, B, C, D}: phantoms are all 2+-attribute subsets — 11 total.
  const Schema schema = FourAttrs();
  auto graph = FeedingGraph::Build(
      schema, {Set(schema, "A"), Set(schema, "B"), Set(schema, "C"),
               Set(schema, "D")});
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->phantoms().size(), 11u);
}

TEST(FeedingGraphTest, PhantomsExcludeQueries) {
  const Schema schema = FourAttrs();
  auto graph = FeedingGraph::Build(
      schema, {Set(schema, "A"), Set(schema, "B"), Set(schema, "AB")});
  ASSERT_TRUE(graph.ok());
  // A ∪ B = AB is a query, so it is not a phantom.
  for (AttributeSet p : graph->phantoms()) {
    EXPECT_NE(p, Set(schema, "AB"));
  }
}

TEST(FeedingGraphTest, PhantomsAreSortedBySizeThenMask) {
  const Schema schema = FourAttrs();
  auto graph = FeedingGraph::Build(
      schema, {Set(schema, "A"), Set(schema, "B"), Set(schema, "C"),
               Set(schema, "D")});
  ASSERT_TRUE(graph.ok());
  const auto& phantoms = graph->phantoms();
  for (size_t i = 1; i < phantoms.size(); ++i) {
    const bool ordered =
        phantoms[i - 1].Count() < phantoms[i].Count() ||
        (phantoms[i - 1].Count() == phantoms[i].Count() &&
         phantoms[i - 1].mask() < phantoms[i].mask());
    EXPECT_TRUE(ordered) << "at index " << i;
  }
}

TEST(FeedingGraphTest, FeedsIsStrictContainment) {
  const Schema schema = FourAttrs();
  EXPECT_TRUE(
      FeedingGraph::Feeds(Set(schema, "ABC"), Set(schema, "AB")));
  EXPECT_FALSE(
      FeedingGraph::Feeds(Set(schema, "AB"), Set(schema, "AB")));
  EXPECT_FALSE(
      FeedingGraph::Feeds(Set(schema, "AB"), Set(schema, "ABC")));
  EXPECT_FALSE(FeedingGraph::Feeds(Set(schema, "AB"), Set(schema, "CD")));
}

TEST(FeedingGraphTest, AllRelationsConcatenatesQueriesAndPhantoms) {
  const Schema schema = FourAttrs();
  auto graph =
      FeedingGraph::Build(schema, {Set(schema, "A"), Set(schema, "B")});
  ASSERT_TRUE(graph.ok());
  const auto all = graph->AllRelations();
  ASSERT_EQ(all.size(), 3u);  // A, B, AB.
  EXPECT_EQ(all[0], Set(schema, "A"));
  EXPECT_EQ(all[1], Set(schema, "B"));
  EXPECT_EQ(all[2], Set(schema, "AB"));
}

TEST(FeedingGraphTest, RejectsInvalidQuerySets) {
  const Schema schema = FourAttrs();
  EXPECT_FALSE(FeedingGraph::Build(schema, {}).ok());
  EXPECT_FALSE(
      FeedingGraph::Build(schema, {Set(schema, "A"), Set(schema, "A")}).ok());
  EXPECT_FALSE(FeedingGraph::Build(schema, {AttributeSet()}).ok());
  EXPECT_FALSE(
      FeedingGraph::Build(schema, {AttributeSet::Of({0, 7})}).ok());
}

}  // namespace
}  // namespace streamagg
