// End-to-end tests of metric aggregation (sum/min/max beyond count) through
// the full phantom cascade: the paper's "report the average packet length"
// style queries must come out exactly right no matter how partial states
// are evicted, propagated and merged.

#include <gtest/gtest.h>

#include "core/optimizer.h"
#include "dsms/reference_aggregator.h"
#include "stream/trace_stats.h"
#include "stream/uniform_generator.h"
#include "util/random.h"

namespace streamagg {
namespace {

// A 5-attribute stream: A..D are grouping attributes (small domains), E is
// a per-record value (e.g. packet length) that metrics aggregate over.
Trace ValueTrace(size_t n, uint64_t seed) {
  const Schema schema = *Schema::Default(5);
  auto gen = std::move(UniformGenerator::Make(*Schema::Default(4), 400, seed))
                 .value();
  Random value_rng(seed ^ 0xabcdef);
  Trace trace(schema);
  trace.Reserve(n);
  trace.set_duration_seconds(10.0);
  for (size_t i = 0; i < n; ++i) {
    const Record base = gen->Next();
    Record r = base;
    r.values[4] = 40 + static_cast<uint32_t>(value_rng.Uniform(1460));
    r.timestamp = 10.0 * static_cast<double>(i) / static_cast<double>(n);
    trace.Append(r);
  }
  return trace;
}

MetricSpec Sum(int attr) { return MetricSpec{AggregateOp::kSum, uint8_t(attr)}; }
MetricSpec Min(int attr) { return MetricSpec{AggregateOp::kMin, uint8_t(attr)}; }
MetricSpec Max(int attr) { return MetricSpec{AggregateOp::kMax, uint8_t(attr)}; }

TEST(MetricRuntimeTest, MetricsFlowThroughPhantomCascade) {
  const Trace trace = ValueTrace(60000, 1);
  const Schema& schema = trace.schema();
  // Queries: avg(E) per AB (sum+count), min/max E per CD.
  const std::vector<QueryDef> queries = {
      QueryDef(*schema.ParseAttributeSet("AB"), {Sum(4)}),
      QueryDef(*schema.ParseAttributeSet("CD"), {Min(4), Max(4)}),
  };
  // Phantom ABCD feeds both; it must maintain sum, min and max.
  auto config = Configuration::Make(schema, queries,
                                    {*schema.ParseAttributeSet("ABCD")});
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  const int abcd = config->FindNode(*schema.ParseAttributeSet("ABCD"));
  EXPECT_EQ(config->node(abcd).metrics.size(), 3u);
  // Entry sizes account for the metric words: ABCD has 4 attrs + count +
  // 3 metrics * 2 words = 11.
  EXPECT_EQ(config->EntryWords(abcd), 4 + 1 + 3 * kMetricWords);

  auto specs = config->ToRuntimeSpecs({512.0, 128.0, 128.0});
  ASSERT_TRUE(specs.ok());
  auto runtime = ConfigurationRuntime::Make(schema, *specs, /*epoch=*/2.0);
  ASSERT_TRUE(runtime.ok()) << runtime.status().ToString();
  (*runtime)->ProcessTrace(trace);

  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const auto expected = ComputeReferenceAggregate(
        trace, queries[qi].group_by, 2.0, queries[qi].metrics);
    std::string diagnostic;
    EXPECT_TRUE(AggregatesEqual(expected, (*runtime)->hfta(),
                                static_cast<int>(qi), &diagnostic))
        << "query " << qi << ": " << diagnostic;
  }
}

TEST(MetricRuntimeTest, InternalQueryNarrowsStateForHfta) {
  const Trace trace = ValueTrace(40000, 2);
  const Schema& schema = trace.schema();
  // Query AB wants sum(E); query A (fed by AB) wants max(E). AB's table
  // must maintain both, but the HFTA must receive exactly what each query
  // declared.
  const std::vector<QueryDef> queries = {
      QueryDef(*schema.ParseAttributeSet("AB"), {Sum(4)}),
      QueryDef(*schema.ParseAttributeSet("A"), {Max(4)}),
  };
  auto config = Configuration::Make(schema, queries, {});
  ASSERT_TRUE(config.ok());
  const int ab = config->FindNode(*schema.ParseAttributeSet("AB"));
  EXPECT_EQ(config->node(ab).metrics.size(), 2u);      // Maintains both.
  EXPECT_EQ(config->node(ab).query_metrics.size(), 1u);  // Reports sum only.

  auto specs = config->ToRuntimeSpecs({256.0, 64.0});
  ASSERT_TRUE(specs.ok());
  auto runtime = ConfigurationRuntime::Make(schema, *specs, 0.0);
  ASSERT_TRUE(runtime.ok());
  (*runtime)->ProcessTrace(trace);
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const auto expected = ComputeReferenceAggregate(
        trace, queries[qi].group_by, 0.0, queries[qi].metrics);
    std::string diagnostic;
    EXPECT_TRUE(AggregatesEqual(expected, (*runtime)->hfta(),
                                static_cast<int>(qi), &diagnostic))
        << "query " << qi << ": " << diagnostic;
  }
}

TEST(MetricRuntimeTest, OptimizerCarriesMetricsIntoThePlan) {
  const Trace trace = ValueTrace(80000, 3);
  TraceStats stats(&trace);
  const RelationCatalog catalog =
      RelationCatalog::FromTrace(&stats, /*clustered=*/false);
  const Schema& schema = trace.schema();
  const std::vector<QueryDef> queries = {
      QueryDef(*schema.ParseAttributeSet("AB"), {Sum(4)}),
      QueryDef(*schema.ParseAttributeSet("BC"), {Sum(4)}),
      QueryDef(*schema.ParseAttributeSet("CD"), {Min(4)}),
  };
  Optimizer optimizer;
  auto plan = optimizer.Optimize(catalog, queries, 40000.0);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  // Whatever configuration was chosen, executing it yields exact results.
  auto specs = plan->ToRuntimeSpecs();
  ASSERT_TRUE(specs.ok());
  auto runtime = ConfigurationRuntime::Make(schema, *specs, 2.0);
  ASSERT_TRUE(runtime.ok());
  (*runtime)->ProcessTrace(trace);
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const auto expected = ComputeReferenceAggregate(
        trace, queries[qi].group_by, 2.0, queries[qi].metrics);
    std::string diagnostic;
    EXPECT_TRUE(AggregatesEqual(expected, (*runtime)->hfta(),
                                static_cast<int>(qi), &diagnostic))
        << "query " << qi << ": " << diagnostic;
  }
  // The memory budget accounts for the wider metric-carrying buckets.
  EXPECT_LE((*runtime)->TotalMemoryWords(), 40000u + 200u);
}

TEST(MetricRuntimeTest, RuntimeValidatesMetricSubsets) {
  const Schema schema = *Schema::Default(5);
  const AttributeSet ab = *schema.ParseAttributeSet("AB");
  const AttributeSet a = *schema.ParseAttributeSet("A");
  RuntimeRelationSpec parent;
  parent.attrs = ab;
  parent.num_buckets = 16;
  parent.metrics = {};  // Maintains nothing extra.
  RuntimeRelationSpec child;
  child.attrs = a;
  child.num_buckets = 8;
  child.parent = 0;
  child.is_query = true;
  child.query_index = 0;
  child.metrics = {Sum(4)};  // Needs sum the parent cannot deliver.
  child.query_metrics = child.metrics;
  EXPECT_FALSE(ConfigurationRuntime::Make(schema, {parent, child}, 0.0).ok());

  // A query may not report metrics its own table does not maintain.
  RuntimeRelationSpec lone;
  lone.attrs = a;
  lone.num_buckets = 8;
  lone.is_query = true;
  lone.query_index = 0;
  lone.metrics = {};
  lone.query_metrics = {Sum(4)};
  EXPECT_FALSE(ConfigurationRuntime::Make(schema, {lone}, 0.0).ok());
}

TEST(MetricRuntimeTest, MemoryAccountingIncludesMetricWords) {
  LftaHashTable plain(100, 2, 1);
  EXPECT_EQ(plain.memory_words(), 100u * 3);
  LftaHashTable with_metrics(
      100, 2, {MetricSpec{AggregateOp::kSum, 4}, MetricSpec{AggregateOp::kMax, 4}},
      1);
  EXPECT_EQ(with_metrics.memory_words(), 100u * (2 + 1 + 2 * kMetricWords));
}

TEST(MetricRuntimeTest, SumsSurvive32BitOverflow) {
  // Sums are carried in 64 bits (two words): 3M records of value ~1500
  // exceed 2^32.
  const Schema schema = *Schema::Default(2);
  LftaHashTable table(4, 1, {Sum(1)}, 7);
  GroupKey key;
  key.size = 1;
  key.values[0] = 42;
  Record r;
  r.values[0] = 42;
  r.values[1] = 1500;
  const std::vector<MetricSpec> specs = {Sum(1)};
  for (int i = 0; i < 3000000; ++i) {
    table.ProbeState(key, AggregateState::FromRecord(r, specs), nullptr,
                     nullptr);
  }
  uint64_t sum = 0;
  table.FlushState([&](const GroupKey&, const AggregateState& s) {
    sum = s.metrics[0];
  });
  EXPECT_EQ(sum, 1500ull * 3000000ull);
}

}  // namespace
}  // namespace streamagg
