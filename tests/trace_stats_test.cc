#include "stream/trace_stats.h"

#include <gtest/gtest.h>

#include "stream/flow_generator.h"
#include "stream/uniform_generator.h"

namespace streamagg {
namespace {

TEST(TraceStatsTest, GroupCountsMatchUniverse) {
  auto gen = UniformGenerator::Make(*Schema::Default(4), 200, 21);
  ASSERT_TRUE(gen.ok());
  const Trace trace = Trace::Generate(**gen, 20000, 10.0);
  TraceStats stats(&trace);
  // 100x oversampling: every group of the universe appears.
  EXPECT_EQ(stats.GroupCount(AttributeSet::Of({0, 1, 2, 3})), 200u);
  EXPECT_EQ(stats.GroupCount(AttributeSet()), 1u);
  // Projections can only be coarser.
  EXPECT_LE(stats.GroupCount(AttributeSet::Of({0, 1})), 200u);
  EXPECT_LE(stats.GroupCount(AttributeSet::Single(0)),
            stats.GroupCount(AttributeSet::Of({0, 1})));
}

TEST(TraceStatsTest, GroupCountMonotoneInAttributes) {
  auto gen = FlowGenerator::MakePaperTrace({});
  ASSERT_TRUE(gen.ok());
  const Trace trace = Trace::Generate(**gen, 100000, 62.0);
  TraceStats stats(&trace);
  for (uint32_t mask = 1; mask < 16; ++mask) {
    const AttributeSet set(mask);
    for (int extra = 0; extra < 4; ++extra) {
      if (set.ContainsIndex(extra)) continue;
      const AttributeSet bigger = set.Union(AttributeSet::Single(extra));
      EXPECT_LE(stats.GroupCount(set), stats.GroupCount(bigger))
          << set.ToString() << " vs " << bigger.ToString();
    }
  }
}

TEST(TraceStatsTest, UniformDataHasFlowLengthNearOne) {
  auto gen = UniformGenerator::Make(*Schema::Default(4), 1000, 23);
  ASSERT_TRUE(gen.ok());
  const Trace trace = Trace::Generate(**gen, 200000, 10.0);
  TraceStats stats(&trace);
  const double l = stats.AvgFlowLength(AttributeSet::Of({0, 1, 2, 3}));
  EXPECT_GE(l, 1.0);
  EXPECT_LT(l, 1.3);
  EXPECT_TRUE(stats.LooksUnclustered());
}

TEST(TraceStatsTest, FlowDataRecoversMeanFlowLength) {
  FlowGeneratorOptions options;
  options.mean_flow_length = 25.0;
  options.seed = 17;
  auto gen = FlowGenerator::MakePaperTrace(options);
  ASSERT_TRUE(gen.ok());
  const Trace trace = Trace::Generate(**gen, 400000, 62.0);
  TraceStats stats(&trace);
  const double l = stats.AvgFlowLength(AttributeSet::Of({0, 1, 2, 3}));
  // With flow ids present the value is exact records/flows, which
  // concentrates around the generator's configured mean of 25.
  EXPECT_GT(l, 25.0 * 0.85);
  EXPECT_LT(l, 25.0 * 1.15);
  EXPECT_FALSE(stats.LooksUnclustered());
}

TEST(TraceStatsTest, GroupCountEstimateTracksExactCount) {
  auto gen = FlowGenerator::MakePaperTrace({});
  ASSERT_TRUE(gen.ok());
  const Trace trace = Trace::Generate(**gen, 200000, 62.0);
  TraceStats stats(&trace);
  for (uint32_t mask : {0b0001u, 0b0011u, 0b0111u, 0b1111u}) {
    const AttributeSet set(mask);
    const uint64_t exact = stats.GroupCount(set);
    const uint64_t estimated = stats.GroupCountEstimate(set);
    EXPECT_NEAR(static_cast<double>(estimated), static_cast<double>(exact),
                0.05 * static_cast<double>(exact) + 5.0)
        << set.ToString();
  }
  EXPECT_EQ(stats.GroupCountEstimate(AttributeSet()), 1u);
}

TEST(TraceStatsTest, CachingIsConsistent) {
  auto gen = UniformGenerator::Make(*Schema::Default(3), 100, 29);
  ASSERT_TRUE(gen.ok());
  const Trace trace = Trace::Generate(**gen, 5000, 5.0);
  TraceStats stats(&trace);
  const AttributeSet ab = AttributeSet::Of({0, 1});
  EXPECT_EQ(stats.GroupCount(ab), stats.GroupCount(ab));
  EXPECT_DOUBLE_EQ(stats.AvgFlowLength(ab), stats.AvgFlowLength(ab));
}

}  // namespace
}  // namespace streamagg
