// OpenMetrics exporter (obs/openmetrics.h): the exposition text is checked
// line by line against the grammar rules that Prometheus enforces on
// ingestion — metadata before samples, contiguous families, `_total` on
// counters, cumulative `le`-ascending histogram buckets, terminal `# EOF` —
// and the sample values are cross-checked against the snapshot fields,
// including a counter above 2^53 that a double-typed pipeline would corrupt.

#include "obs/openmetrics.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/telemetry.h"

namespace streamagg {
namespace {

TelemetrySnapshot MakeSnapshot() {
  TelemetrySnapshot snap;
  snap.epoch = 41;
  snap.num_shards = 2;
  snap.num_producers = 1;
  snap.reoptimizations = 2;
  snap.counters.records = (uint64_t{1} << 63) + 12345;  // Exceeds double.
  snap.counters.intra_probes = 100000;
  snap.counters.intra_transfers = 7;
  snap.counters.flush_probes = 1024;
  snap.counters.flush_transfers = 99;
  snap.counters.epochs_flushed = 41;
  snap.counters.shed_probes = 4500;

  TableTelemetry table;
  table.relation = "AB";
  table.is_query = true;
  table.query_index = 0;
  table.num_buckets = 512;
  table.occupied = 100;
  table.occupied_hwm = 300;
  table.probes = 100000;
  table.inserts = 60000;
  table.updates = 30000;
  table.collisions = 10000;
  table.observed_collision_rate = 0.1;
  table.predicted_collision_rate = 0.0875;
  snap.tables.push_back(table);
  table.relation = "BC";
  table.is_query = false;
  table.query_index = -1;
  table.predicted_collision_rate = TableTelemetry::kNoPrediction;
  snap.tables.push_back(table);

  snap.shards.push_back(ShardTelemetry{1000, 12, 7, 4, 0});
  snap.shards.push_back(ShardTelemetry{997, 3, 0, -1, -1});
  snap.producers.push_back(ProducerTelemetry{1997, 9, 3, -1, -1});
  snap.hfta_groups = {123, 456789};

  snap.shedding.enabled = true;
  snap.shedding.target_fraction = 0.5;
  snap.shedding.offered_records = 60000;
  snap.shedding.shed_probes = 4500;
  snap.shedding.shed_fraction = 0.375;
  snap.shedding.accuracy_loss = 0.25;
  snap.shedding.cycles_saved_per_record = 1.5;
  snap.shedding.rebalances = 2;
  snap.shedding.relations.push_back(
      SheddingRelationTelemetry{"ABCD", 12.5, 0.5, 30000});
  snap.shedding.relations.push_back(
      SheddingRelationTelemetry{"C\"D\\E", 3.25, 0.25, 15000});

  snap.batch_records.Record(64);
  snap.batch_records.Record(3);
  snap.batch_ns.Record(123456);
  snap.epoch_gap_ns.Record(0);
  return snap;
}

// The subset of the OpenMetrics line grammar a scraper enforces. Walks the
// exposition text once and fails the test at the first violation.
void ValidateOpenMetrics(const std::string& text) {
  ASSERT_FALSE(text.empty());
  ASSERT_EQ(text.back(), '\n') << "exposition must end with a newline";

  std::map<std::string, std::string> family_type;  // name -> type.
  std::string current_family;                      // Last declared family.
  bool saw_eof = false;

  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(saw_eof) << "content after # EOF: " << line;
    ASSERT_FALSE(line.empty()) << "blank lines are not allowed";

    if (line == "# EOF") {
      saw_eof = true;
      continue;
    }
    if (line.rfind("# TYPE ", 0) == 0) {
      std::istringstream meta(line.substr(7));
      std::string name, type;
      ASSERT_TRUE(meta >> name >> type) << line;
      ASSERT_TRUE(type == "gauge" || type == "counter" || type == "histogram")
          << line;
      ASSERT_EQ(family_type.count(name), 0u)
          << "family declared twice: " << name;
      family_type[name] = type;
      current_family = name;
      continue;
    }
    if (line.rfind("# HELP ", 0) == 0) {
      std::istringstream meta(line.substr(7));
      std::string name;
      ASSERT_TRUE(meta >> name) << line;
      ASSERT_EQ(name, current_family) << "HELP outside its family: " << line;
      continue;
    }
    ASSERT_NE(line[0], '#') << "unknown metadata line: " << line;

    // Sample line: name[{labels}] value.
    const size_t brace = line.find('{');
    const size_t space = line.find(' ', brace == std::string::npos
                                              ? 0
                                              : line.find('}', brace));
    ASSERT_NE(space, std::string::npos) << line;
    std::string name = line.substr(0, space);
    if (brace != std::string::npos && brace < space) {
      const size_t close = line.find('}', brace);
      ASSERT_NE(close, std::string::npos) << line;
      name = line.substr(0, brace);
    }
    const std::string value = line.substr(space + 1);
    char* end = nullptr;
    std::strtod(value.c_str(), &end);
    ASSERT_TRUE(end != nullptr && *end == '\0')
        << "unparseable value: " << line;

    // The sample must belong to the most recently declared family
    // (contiguity), under the suffix rules of that family's type.
    ASSERT_FALSE(current_family.empty()) << "sample before any TYPE: " << line;
    const std::string& type = family_type[current_family];
    if (type == "counter") {
      ASSERT_EQ(name, current_family + "_total") << line;
    } else if (type == "gauge") {
      ASSERT_EQ(name, current_family) << line;
    } else {  // histogram
      ASSERT_TRUE(name == current_family + "_bucket" ||
                  name == current_family + "_count" ||
                  name == current_family + "_sum")
          << line;
    }
  }
  EXPECT_TRUE(saw_eof) << "missing terminal # EOF";
}

std::vector<std::string> Lines(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) out.push_back(line);
  return out;
}

TEST(OpenMetricsTest, FullSnapshotPassesGrammar) {
  ValidateOpenMetrics(TelemetryToOpenMetrics(MakeSnapshot()));
}

TEST(OpenMetricsTest, EmptySnapshotPassesGrammarAndKeepsCoreFamilies) {
  const std::string text = TelemetryToOpenMetrics(TelemetrySnapshot());
  ValidateOpenMetrics(text);
  // Engine-level families and the shedding flag survive an empty snapshot.
  EXPECT_NE(text.find("streamagg_records_total 0\n"), std::string::npos);
  EXPECT_NE(text.find("streamagg_shedding_enabled 0\n"), std::string::npos);
  // Disabled controller exports nothing beyond the flag.
  EXPECT_EQ(text.find("streamagg_shedding_target_fraction"),
            std::string::npos);
}

TEST(OpenMetricsTest, CounterValuesAreBitExact) {
  const std::string text = TelemetryToOpenMetrics(MakeSnapshot());
  // (1 << 63) + 12345: exact only if rendered through uint64 formatting.
  EXPECT_NE(text.find("streamagg_records_total 9223372036854788153\n"),
            std::string::npos);
  EXPECT_NE(text.find("streamagg_epochs_flushed_total 41\n"),
            std::string::npos);
  EXPECT_NE(text.find("streamagg_shed_probes_total 4500\n"),
            std::string::npos);
  EXPECT_NE(
      text.find("streamagg_table_probes_total{relation=\"AB\"} 100000\n"),
      std::string::npos);
  EXPECT_NE(text.find("streamagg_shard_records_total{shard=\"0\"} 1000\n"),
            std::string::npos);
  EXPECT_NE(text.find("streamagg_shard_records_total{shard=\"1\"} 997\n"),
            std::string::npos);
  EXPECT_NE(
      text.find("streamagg_producer_records_total{producer=\"0\"} 1997\n"),
      std::string::npos);
  EXPECT_NE(text.find("streamagg_hfta_groups{query=\"1\"} 456789\n"),
            std::string::npos);
}

TEST(OpenMetricsTest, PredictedCollisionRateOmittedWithoutPrediction) {
  const std::string text = TelemetryToOpenMetrics(MakeSnapshot());
  EXPECT_NE(text.find("streamagg_table_collision_rate"
                      "{relation=\"AB\",kind=\"observed\"} "),
            std::string::npos);
  EXPECT_NE(text.find("streamagg_table_collision_rate"
                      "{relation=\"AB\",kind=\"predicted\"} "),
            std::string::npos);
  EXPECT_NE(text.find("{relation=\"BC\",kind=\"observed\"} "),
            std::string::npos);
  // BC was never priced by the planner: no predicted sample.
  EXPECT_EQ(text.find("{relation=\"BC\",kind=\"predicted\"}"),
            std::string::npos);
}

TEST(OpenMetricsTest, LabelValuesAreEscaped) {
  const std::string text = TelemetryToOpenMetrics(MakeSnapshot());
  // Relation C"D\E must appear with the quote and backslash escaped.
  EXPECT_NE(text.find("streamagg_shedding_relation_shed_records_total"
                      "{relation=\"C\\\"D\\\\E\"} 15000\n"),
            std::string::npos);
}

TEST(OpenMetricsTest, HistogramBucketsAreCumulativeAndBounded) {
  const TelemetrySnapshot snap = MakeSnapshot();
  const std::string text = TelemetryToOpenMetrics(snap);

  // batch_records saw {64, 3}: log2 buckets up to le="127", then the
  // mandatory +Inf bucket equal to the count.
  std::vector<std::string> batch;
  for (const std::string& line : Lines(text)) {
    if (line.rfind("streamagg_batch_records", 0) == 0) batch.push_back(line);
  }
  const std::vector<std::string> expected = {
      "streamagg_batch_records_bucket{le=\"0\"} 0",
      "streamagg_batch_records_bucket{le=\"1\"} 0",
      "streamagg_batch_records_bucket{le=\"3\"} 1",
      "streamagg_batch_records_bucket{le=\"7\"} 1",
      "streamagg_batch_records_bucket{le=\"15\"} 1",
      "streamagg_batch_records_bucket{le=\"31\"} 1",
      "streamagg_batch_records_bucket{le=\"63\"} 1",
      "streamagg_batch_records_bucket{le=\"127\"} 2",
      "streamagg_batch_records_bucket{le=\"+Inf\"} 2",
      "streamagg_batch_records_count 2",
      "streamagg_batch_records_sum 67",
  };
  EXPECT_EQ(batch, expected);

  // A histogram that never recorded still exposes the +Inf bucket, count
  // and sum (all zero) — scrapers reject bucketless histograms.
  EXPECT_NE(text.find("streamagg_flush_ns_bucket{le=\"+Inf\"} 0\n"),
            std::string::npos);
  EXPECT_NE(text.find("streamagg_flush_ns_count 0\n"), std::string::npos);

  // epoch_gap_ns saw one zero: bucket 0 holds it.
  EXPECT_NE(text.find("streamagg_epoch_gap_ns_bucket{le=\"0\"} 1\n"),
            std::string::npos);
}

TEST(OpenMetricsTest, ContentTypeAdvertisesOpenMetrics) {
  EXPECT_EQ(std::string(OpenMetricsContentType()),
            "application/openmetrics-text; version=1.0.0; charset=utf-8");
}

}  // namespace
}  // namespace streamagg
