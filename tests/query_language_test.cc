#include "core/query_language.h"

#include <gtest/gtest.h>

namespace streamagg {
namespace {

Schema NetSchema() {
  return *Schema::Make({"srcIP", "srcPort", "dstIP", "dstPort", "len"});
}

TEST(QueryLanguageTest, ParsesPaperQ0) {
  // Paper Section 2.2, Q0 (schema attribute A stands in for srcIP).
  const Schema schema = *Schema::Default(4);
  auto q = ParseQuery(schema,
                      "select A, tb, count(*) as cnt\n"
                      "from R\n"
                      "group by A, time/60 as tb");
  // "tb" is the epoch alias, not a schema attribute: selecting it is not
  // supported (epochs address results), so expect a clear error.
  EXPECT_FALSE(q.ok());

  auto q2 = ParseQuery(schema,
                       "select A, count(*) as cnt from R group by A, "
                       "time/60 as tb");
  ASSERT_TRUE(q2.ok()) << q2.status().ToString();
  EXPECT_EQ(q2->def.group_by, AttributeSet::Single(0));
  EXPECT_DOUBLE_EQ(q2->epoch_seconds, 60.0);
  EXPECT_TRUE(q2->def.metrics.empty());
  EXPECT_EQ(q2->relation, "R");
  ASSERT_EQ(q2->outputs.size(), 2u);
  EXPECT_EQ(q2->outputs[1].name, "cnt");
}

TEST(QueryLanguageTest, ParsesPaperQ1Q2Q3) {
  const Schema schema = *Schema::Default(4);
  for (const char* attr : {"A", "B", "C"}) {
    const std::string text = std::string("select ") + attr +
                             ", count(*) from R group by " + attr;
    auto q = ParseQuery(schema, text);
    ASSERT_TRUE(q.ok()) << text;
    EXPECT_EQ(q->def.group_by, *schema.ParseAttributeSet(attr));
    EXPECT_DOUBLE_EQ(q->epoch_seconds, 0.0);
  }
}

TEST(QueryLanguageTest, ParsesAveragePacketLengthQuery) {
  // The paper's motivating query: "for every destination IP, destination
  // port and 5 minute interval, report the average packet length".
  const Schema schema = NetSchema();
  auto q = ParseQuery(schema,
                      "select dstIP, dstPort, avg(len) from packets "
                      "group by dstIP, dstPort, time/300");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->def.group_by, *schema.ParseAttributeSet("dstIP,dstPort"));
  EXPECT_DOUBLE_EQ(q->epoch_seconds, 300.0);
  // avg is rewritten to a sum metric; count is implicit.
  ASSERT_EQ(q->def.metrics.size(), 1u);
  EXPECT_EQ(q->def.metrics[0].op, AggregateOp::kSum);
  EXPECT_EQ(q->def.metrics[0].attr, 4);
}

TEST(QueryLanguageTest, MultipleAggregatesShareMetrics) {
  const Schema schema = NetSchema();
  auto q = ParseQuery(schema,
                      "select srcIP, sum(len), avg(len), min(len), max(len) "
                      "from packets group by srcIP");
  ASSERT_TRUE(q.ok());
  // sum and avg share one sum metric; min and max add one each.
  EXPECT_EQ(q->def.metrics.size(), 3u);
  EXPECT_EQ(q->outputs.size(), 5u);
}

TEST(QueryLanguageTest, OutputValueComputesColumns) {
  const Schema schema = NetSchema();
  auto q = ParseQuery(schema,
                      "select dstIP, count(*), avg(len), max(len) "
                      "from packets group by dstIP");
  ASSERT_TRUE(q.ok());
  GroupKey key;
  key.size = 1;
  key.values[0] = 99;
  AggregateState state = AggregateState::FromCount(4);
  state.num_metrics = static_cast<uint8_t>(q->def.metrics.size());
  // Metric list is sorted (sum < min < max by op order: kSum=0,kMin=1,kMax=2).
  ASSERT_EQ(q->def.metrics.size(), 2u);
  state.metrics[0] = 400;  // sum(len)
  state.metrics[1] = 150;  // max(len)
  EXPECT_DOUBLE_EQ(q->OutputValue(0, key, state), 99.0);
  EXPECT_DOUBLE_EQ(q->OutputValue(1, key, state), 4.0);
  EXPECT_DOUBLE_EQ(q->OutputValue(2, key, state), 100.0);  // 400 / 4.
  EXPECT_DOUBLE_EQ(q->OutputValue(3, key, state), 150.0);
}

TEST(QueryLanguageTest, KeywordsAreCaseInsensitive) {
  const Schema schema = *Schema::Default(3);
  auto q = ParseQuery(schema, "SELECT A, COUNT(*) FROM R GROUP BY A");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->def.group_by, AttributeSet::Single(0));
}

TEST(QueryLanguageTest, RejectsMalformedQueries) {
  const Schema schema = *Schema::Default(3);
  // Missing pieces.
  EXPECT_FALSE(ParseQuery(schema, "").ok());
  EXPECT_FALSE(ParseQuery(schema, "select A from R").ok());
  EXPECT_FALSE(ParseQuery(schema, "select from R group by A").ok());
  EXPECT_FALSE(ParseQuery(schema, "select A group by A").ok());
  // Unknown attributes.
  EXPECT_FALSE(ParseQuery(schema, "select Z from R group by Z").ok());
  EXPECT_FALSE(
      ParseQuery(schema, "select A, sum(Z) from R group by A").ok());
  // Select item outside the grouping.
  EXPECT_FALSE(ParseQuery(schema, "select A, B from R group by A").ok());
  // Bad aggregates.
  EXPECT_FALSE(ParseQuery(schema, "select count(A) from R group by A").ok());
  EXPECT_FALSE(ParseQuery(schema, "select sum(*) from R group by A").ok());
  // Duplicate grouping attribute.
  EXPECT_FALSE(
      ParseQuery(schema, "select A from R group by A, A").ok());
  // Bad epoch.
  EXPECT_FALSE(
      ParseQuery(schema, "select A from R group by A, time/0").ok());
  EXPECT_FALSE(
      ParseQuery(schema, "select A from R group by A, time/").ok());
  // Trailing garbage.
  EXPECT_FALSE(
      ParseQuery(schema, "select A from R group by A having x").ok());
}

TEST(QueryLanguageTest, QuerySetValidatesConsistency) {
  const Schema schema = *Schema::Default(4);
  auto ok = ParseQuerySet(
      schema, {"select A, count(*) from R group by A, time/60",
               "select B, count(*) from R group by B, time/60"});
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->size(), 2u);

  // Different epochs.
  EXPECT_FALSE(ParseQuerySet(
                   schema, {"select A, count(*) from R group by A, time/60",
                            "select B, count(*) from R group by B, time/30"})
                   .ok());
  // Different relations.
  EXPECT_FALSE(ParseQuerySet(
                   schema, {"select A, count(*) from R group by A",
                            "select B, count(*) from S group by B"})
                   .ok());
  EXPECT_FALSE(ParseQuerySet(schema, {}).ok());
}

TEST(QueryLanguageTest, ParsesWhereClause) {
  const Schema schema = NetSchema();
  auto q = ParseQuery(schema,
                      "select srcIP, count(*) from packets "
                      "where len > 100 and srcPort = 443 "
                      "group by srcIP");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->filters.size(), 2u);
  EXPECT_EQ(q->filters[0].attr, 4);
  EXPECT_EQ(q->filters[0].op, CompareOp::kGt);
  EXPECT_EQ(q->filters[0].value, 100u);
  EXPECT_EQ(q->filters[1].attr, 1);
  EXPECT_EQ(q->filters[1].op, CompareOp::kEq);

  Record r;
  r.values[1] = 443;
  r.values[4] = 200;
  EXPECT_TRUE(q->RecordPasses(r));
  r.values[4] = 100;  // Not strictly greater.
  EXPECT_FALSE(q->RecordPasses(r));
  r.values[4] = 200;
  r.values[1] = 80;
  EXPECT_FALSE(q->RecordPasses(r));
}

TEST(QueryLanguageTest, WhereSupportsAllComparators) {
  const Schema schema = *Schema::Default(2);
  struct Case {
    const char* op;
    uint32_t value;
    bool expect;
  };
  // Record A = 5 against each comparator with constant 5 or 6.
  const Case cases[] = {
      {"=", 5, true},   {"!=", 5, false}, {"<", 6, true},
      {"<=", 5, true},  {">", 5, false},  {">=", 5, true},
  };
  Record r;
  r.values[0] = 5;
  for (const Case& c : cases) {
    const std::string text = std::string("select B, count(*) from R where A ") +
                             c.op + " " + std::to_string(c.value) +
                             " group by B";
    auto q = ParseQuery(schema, text);
    ASSERT_TRUE(q.ok()) << text;
    EXPECT_EQ(q->RecordPasses(r), c.expect) << text;
  }
}

TEST(QueryLanguageTest, ParsesHavingClause) {
  // The paper's motivating query: "...report the total number of packets,
  // provided this number of packets is more than 100".
  const Schema schema = NetSchema();
  auto q = ParseQuery(schema,
                      "select srcIP, count(*) from packets "
                      "group by srcIP, time/300 having count(*) > 100");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_TRUE(q->having.has_value());
  GroupKey key;
  key.size = 1;
  EXPECT_FALSE(q->HavingSatisfied(key, AggregateState::FromCount(100)));
  EXPECT_TRUE(q->HavingSatisfied(key, AggregateState::FromCount(101)));
}

TEST(QueryLanguageTest, HavingOnAvgRegistersSumMetric) {
  const Schema schema = NetSchema();
  auto q = ParseQuery(schema,
                      "select dstIP, count(*) from packets "
                      "group by dstIP having avg(len) >= 1000");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  // The having clause forces a sum(len) metric even though no select item
  // needs it.
  ASSERT_EQ(q->def.metrics.size(), 1u);
  EXPECT_EQ(q->def.metrics[0].op, AggregateOp::kSum);
  EXPECT_EQ(q->def.metrics[0].attr, 4);
  GroupKey key;
  key.size = 1;
  AggregateState state = AggregateState::FromCount(4);
  state.num_metrics = 1;
  state.metrics[0] = 4000;  // avg 1000.
  EXPECT_TRUE(q->HavingSatisfied(key, state));
  state.metrics[0] = 3999;
  EXPECT_FALSE(q->HavingSatisfied(key, state));
}

TEST(QueryLanguageTest, RejectsMalformedWhereAndHaving) {
  const Schema schema = *Schema::Default(3);
  EXPECT_FALSE(
      ParseQuery(schema, "select A from R where group by A").ok());
  EXPECT_FALSE(
      ParseQuery(schema, "select A from R where Z > 1 group by A").ok());
  EXPECT_FALSE(
      ParseQuery(schema, "select A from R where A >> 1 group by A").ok());
  EXPECT_FALSE(
      ParseQuery(schema, "select A from R where A > group by A").ok());
  EXPECT_FALSE(
      ParseQuery(schema, "select A from R group by A having").ok());
  EXPECT_FALSE(
      ParseQuery(schema, "select A from R group by A having B > 1").ok());
  EXPECT_FALSE(
      ParseQuery(schema, "select A from R group by A having count(A) > 1")
          .ok());
}

TEST(QueryLanguageTest, QuerySetRequiresSharedWhereClause) {
  const Schema schema = *Schema::Default(4);
  // Same filter: OK.
  EXPECT_TRUE(ParseQuerySet(
                  schema, {"select A, count(*) from R where D > 5 group by A",
                           "select B, count(*) from R where D > 5 group by B"})
                  .ok());
  // Different filters: phantom sharing impossible.
  EXPECT_FALSE(
      ParseQuerySet(schema,
                    {"select A, count(*) from R where D > 5 group by A",
                     "select B, count(*) from R where D > 6 group by B"})
          .ok());
}

TEST(QueryLanguageTest, DerivedOutputNames) {
  const Schema schema = NetSchema();
  auto q = ParseQuery(schema,
                      "select srcIP, count(*), sum(len) from packets "
                      "group by srcIP");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->outputs[0].name, "srcIP");
  EXPECT_EQ(q->outputs[1].name, "count");
  EXPECT_EQ(q->outputs[2].name, "sum_len");
}

}  // namespace
}  // namespace streamagg
