// Parameterized end-to-end correctness matrix: every configuration shape x
// workload x epoch length must produce exactly the same per-epoch group
// counts as a direct aggregation. This is the library's core invariant —
// phantoms and allocations change cost, never answers.

#include <gtest/gtest.h>

#include "core/space_allocation.h"
#include "dsms/reference_aggregator.h"
#include "stream/flow_generator.h"
#include "stream/trace_stats.h"
#include "stream/uniform_generator.h"
#include "stream/zipf_generator.h"

namespace streamagg {
namespace {

struct MatrixCase {
  const char* config_text;
  const char* workload;  // "uniform", "zipf", "flow"
  double epoch_seconds;  // 0 = single epoch
  double memory_words;
  bool with_metrics;  // Attach a sum(A) metric to every query.
};

std::string CaseName(const ::testing::TestParamInfo<MatrixCase>& info) {
  std::string name = std::string(info.param.workload) + "_m" +
                     std::to_string(static_cast<int>(info.param.memory_words)) +
                     "_e" +
                     std::to_string(static_cast<int>(
                         info.param.epoch_seconds * 10)) +
                     (info.param.with_metrics ? "_metrics" : "") + "_" +
                     std::to_string(info.index);
  return name;
}

class RuntimeMatrixTest : public ::testing::TestWithParam<MatrixCase> {};

Trace BuildTrace(const std::string& workload, uint64_t seed) {
  const Schema schema = *Schema::Default(4);
  if (workload == "uniform") {
    auto gen = std::move(UniformGenerator::Make(schema, 800, seed)).value();
    return Trace::Generate(*gen, 60000, 12.0);
  }
  if (workload == "zipf") {
    auto universe =
        GroupUniverse::Uniform(schema, 800, {60, 60, 60, 60}, seed);
    auto gen =
        std::move(ZipfGenerator::Make(std::move(*universe), 1.0, seed + 1))
            .value();
    return Trace::Generate(*gen, 60000, 12.0);
  }
  FlowGeneratorOptions options;
  options.seed = seed;
  auto gen = std::move(FlowGenerator::MakePaperTrace(options)).value();
  return Trace::Generate(*gen, 60000, 12.0);
}

TEST_P(RuntimeMatrixTest, ResultsEqualDirectAggregation) {
  const MatrixCase& param = GetParam();
  const Trace trace = BuildTrace(param.workload, 0xabc + param.memory_words);
  auto config = Configuration::Parse(trace.schema(), param.config_text);
  ASSERT_TRUE(config.ok()) << param.config_text;
  std::vector<QueryDef> defs = config->QueryDefs();
  if (param.with_metrics) {
    // Every query also maintains sum(A); phantoms must carry the state.
    for (QueryDef& def : defs) {
      def.metrics = {MetricSpec{AggregateOp::kSum, 0}};
    }
    auto rebuilt = Configuration::Make(trace.schema(), defs,
                                       config->PhantomSets());
    ASSERT_TRUE(rebuilt.ok()) << param.config_text;
    config = std::move(rebuilt);
  }

  // Allocate real space with SL so bucket counts are realistic.
  TraceStats stats(&trace);
  RelationCatalog catalog = RelationCatalog::FromTrace(&stats);
  PreciseCollisionModel precise;
  CostModel cost_model(&catalog, &precise, CostParams{1.0, 50.0});
  SpaceAllocator allocator(&cost_model);
  auto buckets =
      allocator.Allocate(*config, param.memory_words, AllocationScheme::kSL);
  ASSERT_TRUE(buckets.ok()) << buckets.status().ToString();

  auto specs = config->ToRuntimeSpecs(*buckets);
  ASSERT_TRUE(specs.ok());
  auto runtime = ConfigurationRuntime::Make(trace.schema(), *specs,
                                            param.epoch_seconds);
  ASSERT_TRUE(runtime.ok());
  (*runtime)->ProcessTrace(trace);

  const std::vector<QueryDef> queries = config->QueryDefs();
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const auto expected = ComputeReferenceAggregate(
        trace, queries[qi].group_by, param.epoch_seconds,
        queries[qi].metrics);
    std::string diagnostic;
    EXPECT_TRUE(AggregatesEqual(expected, (*runtime)->hfta(),
                                static_cast<int>(qi), &diagnostic))
        << param.config_text << " query " << qi << ": " << diagnostic;
  }
}

constexpr const char* kShapes[] = {
    "A B C D",
    "ABCD(A B C D)",
    "AB(A B) CD(C D)",
    "ABC(AB(A B) C) D",
    "ABCD(AB BCD(BC BD CD))",
    "ABCD(ABC(A BC(B C)) D)",
};

std::vector<MatrixCase> BuildCases() {
  std::vector<MatrixCase> cases;
  for (const char* shape : kShapes) {
    for (const char* workload : {"uniform", "zipf", "flow"}) {
      for (double epoch : {0.0, 3.0}) {
        for (double memory : {2000.0, 30000.0}) {
          cases.push_back(MatrixCase{shape, workload, epoch, memory, false});
        }
        // One metric-bearing case per (shape, workload, epoch).
        cases.push_back(MatrixCase{shape, workload, epoch, 20000.0, true});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllShapesAndWorkloads, RuntimeMatrixTest,
                         ::testing::ValuesIn(BuildCases()), CaseName);

}  // namespace
}  // namespace streamagg
