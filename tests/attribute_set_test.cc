#include "stream/attribute_set.h"

#include <gtest/gtest.h>

namespace streamagg {
namespace {

TEST(AttributeSetTest, EmptyByDefault) {
  AttributeSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.Count(), 0);
  EXPECT_EQ(s.ToString(), "");
}

TEST(AttributeSetTest, SingleAndOf) {
  AttributeSet a = AttributeSet::Single(0);
  EXPECT_EQ(a.Count(), 1);
  EXPECT_TRUE(a.ContainsIndex(0));
  EXPECT_FALSE(a.ContainsIndex(1));

  AttributeSet abc = AttributeSet::Of({0, 1, 2});
  EXPECT_EQ(abc.Count(), 3);
  EXPECT_EQ(abc.ToString(), "ABC");
}

TEST(AttributeSetTest, SetAlgebra) {
  AttributeSet ab = AttributeSet::Of({0, 1});
  AttributeSet bc = AttributeSet::Of({1, 2});
  EXPECT_EQ(ab.Union(bc), AttributeSet::Of({0, 1, 2}));
  EXPECT_EQ(ab.Intersect(bc), AttributeSet::Single(1));
  EXPECT_EQ(ab.Minus(bc), AttributeSet::Single(0));
}

TEST(AttributeSetTest, ContainmentRelations) {
  AttributeSet ab = AttributeSet::Of({0, 1});
  AttributeSet abc = AttributeSet::Of({0, 1, 2});
  AttributeSet bc = AttributeSet::Of({1, 2});

  EXPECT_TRUE(ab.IsSubsetOf(abc));
  EXPECT_TRUE(ab.IsProperSubsetOf(abc));
  EXPECT_TRUE(abc.Contains(ab));
  EXPECT_FALSE(ab.IsSubsetOf(bc));
  EXPECT_TRUE(ab.IsSubsetOf(ab));
  EXPECT_FALSE(ab.IsProperSubsetOf(ab));
}

TEST(AttributeSetTest, IndicesAreSorted) {
  AttributeSet s = AttributeSet::Of({3, 0, 2});
  const std::vector<int> idx = s.Indices();
  ASSERT_EQ(idx.size(), 3u);
  EXPECT_EQ(idx[0], 0);
  EXPECT_EQ(idx[1], 2);
  EXPECT_EQ(idx[2], 3);
}

TEST(AttributeSetTest, OrderingIsByMask) {
  EXPECT_LT(AttributeSet::Single(0), AttributeSet::Single(1));
  EXPECT_LT(AttributeSet::Of({0, 1}), AttributeSet::Of({2}));
}

TEST(AttributeSetTest, ToStringUsesLetters) {
  EXPECT_EQ(AttributeSet::Of({0, 2, 3}).ToString(), "ACD");
}

}  // namespace
}  // namespace streamagg
