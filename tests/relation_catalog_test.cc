#include "core/relation_catalog.h"

#include <gtest/gtest.h>

#include "stream/flow_generator.h"
#include "stream/uniform_generator.h"

namespace streamagg {
namespace {

Schema FourAttrs() { return *Schema::Default(4); }

AttributeSet Set(const Schema& schema, const std::string& spec) {
  return *schema.ParseAttributeSet(spec);
}

TEST(RelationCatalogTest, SyntheticReturnsDeclaredCounts) {
  const Schema schema = FourAttrs();
  auto catalog = RelationCatalog::Synthetic(
      schema, {{Set(schema, "A").mask(), 10},
               {Set(schema, "B").mask(), 20},
               {Set(schema, "C").mask(), 30},
               {Set(schema, "D").mask(), 40},
               {Set(schema, "AB").mask(), 150}});
  ASSERT_TRUE(catalog.ok());
  EXPECT_EQ(catalog->GroupCount(Set(schema, "A")), 10u);
  EXPECT_EQ(catalog->GroupCount(Set(schema, "AB")), 150u);
}

TEST(RelationCatalogTest, SyntheticFallsBackToIndependenceEstimate) {
  const Schema schema = FourAttrs();
  auto catalog = RelationCatalog::Synthetic(
      schema, {{Set(schema, "A").mask(), 10},
               {Set(schema, "B").mask(), 20},
               {Set(schema, "C").mask(), 30},
               {Set(schema, "D").mask(), 40}});
  ASSERT_TRUE(catalog.ok());
  // Undeclared AB: product of singletons.
  EXPECT_EQ(catalog->GroupCount(Set(schema, "AB")), 200u);
  EXPECT_EQ(catalog->GroupCount(Set(schema, "ABC")), 6000u);
}

TEST(RelationCatalogTest, IndependenceEstimateIsCappedBySupersets) {
  const Schema schema = FourAttrs();
  auto catalog = RelationCatalog::Synthetic(
      schema, {{Set(schema, "A").mask(), 100},
               {Set(schema, "B").mask(), 100},
               {Set(schema, "C").mask(), 100},
               {Set(schema, "D").mask(), 100},
               {Set(schema, "ABCD").mask(), 500}});
  ASSERT_TRUE(catalog.ok());
  // AB would be 10000 by independence, but the declared ABCD count caps any
  // subset at 500.
  EXPECT_EQ(catalog->GroupCount(Set(schema, "AB")), 500u);
}

TEST(RelationCatalogTest, SyntheticValidatesInput) {
  const Schema schema = FourAttrs();
  // Missing singleton.
  EXPECT_FALSE(RelationCatalog::Synthetic(
                   schema, {{Set(schema, "A").mask(), 10},
                            {Set(schema, "B").mask(), 20},
                            {Set(schema, "C").mask(), 30}})
                   .ok());
  // Zero count.
  EXPECT_FALSE(RelationCatalog::Synthetic(
                   schema, {{Set(schema, "A").mask(), 0},
                            {Set(schema, "B").mask(), 20},
                            {Set(schema, "C").mask(), 30},
                            {Set(schema, "D").mask(), 40}})
                   .ok());
  // Flow length below 1.
  EXPECT_FALSE(RelationCatalog::Synthetic(
                   schema,
                   {{Set(schema, "A").mask(), 10},
                    {Set(schema, "B").mask(), 20},
                    {Set(schema, "C").mask(), 30},
                    {Set(schema, "D").mask(), 40}},
                   0.5)
                   .ok());
}

TEST(RelationCatalogTest, SyntheticFlowLengthAppliesToAllSets) {
  const Schema schema = FourAttrs();
  auto catalog = RelationCatalog::Synthetic(
      schema,
      {{Set(schema, "A").mask(), 10},
       {Set(schema, "B").mask(), 20},
       {Set(schema, "C").mask(), 30},
       {Set(schema, "D").mask(), 40}},
      25.0);
  ASSERT_TRUE(catalog.ok());
  EXPECT_DOUBLE_EQ(catalog->FlowLength(Set(schema, "A")), 25.0);
  EXPECT_DOUBLE_EQ(catalog->FlowLength(Set(schema, "ABCD")), 25.0);
}

TEST(RelationCatalogTest, FromTraceMeasuresCounts) {
  auto gen = UniformGenerator::Make(FourAttrs(), 300, 3);
  ASSERT_TRUE(gen.ok());
  const Trace trace = Trace::Generate(**gen, 30000, 5.0);
  TraceStats stats(&trace);
  const RelationCatalog catalog =
      RelationCatalog::FromTrace(&stats, /*clustered=*/false);
  EXPECT_EQ(catalog.GroupCount(trace.schema().AllAttributes()), 300u);
  EXPECT_DOUBLE_EQ(catalog.FlowLength(trace.schema().AllAttributes()), 1.0);
}

TEST(RelationCatalogTest, FromTraceClusteredMeasuresFlowLength) {
  FlowGeneratorOptions options;
  options.mean_flow_length = 30.0;
  auto gen = FlowGenerator::MakePaperTrace(options);
  ASSERT_TRUE(gen.ok());
  const Trace trace = Trace::Generate(**gen, 200000, 62.0);
  TraceStats stats(&trace);
  const RelationCatalog catalog = RelationCatalog::FromTrace(&stats);
  const double l = catalog.FlowLength(trace.schema().AllAttributes());
  EXPECT_GT(l, 20.0);
  EXPECT_LT(l, 40.0);
}

TEST(RelationCatalogTest, GetBundlesEverything) {
  const Schema schema = FourAttrs();
  auto catalog = RelationCatalog::Synthetic(
      schema,
      {{Set(schema, "A").mask(), 10},
       {Set(schema, "B").mask(), 20},
       {Set(schema, "C").mask(), 30},
       {Set(schema, "D").mask(), 40}},
      5.0);
  ASSERT_TRUE(catalog.ok());
  const Relation r = catalog->Get(Set(schema, "AB"));
  EXPECT_EQ(r.attrs, Set(schema, "AB"));
  EXPECT_EQ(r.group_count, 200u);
  EXPECT_DOUBLE_EQ(r.avg_flow_length, 5.0);
  EXPECT_EQ(r.entry_words(), 3);
  EXPECT_DOUBLE_EQ(r.EffectiveWeight(), 200.0 * 3 / 5.0);
}

TEST(RelationCatalogTest, PrewarmCachesFeedingGraphStatistics) {
  auto gen = UniformGenerator::Make(FourAttrs(), 200, 5);
  ASSERT_TRUE(gen.ok());
  const Trace trace = Trace::Generate(**gen, 20000, 5.0);
  TraceStats stats(&trace);
  const RelationCatalog catalog =
      RelationCatalog::FromTrace(&stats, /*clustered=*/false);
  std::vector<AttributeSet> queries;
  for (int i = 0; i < 4; ++i) queries.push_back(AttributeSet::Single(i));
  catalog.Prewarm(queries);
  // After prewarming, lookups must be consistent (and cheap — no way to
  // assert timing here, but the cached and uncached paths must agree).
  for (uint32_t mask = 1; mask < 16; ++mask) {
    EXPECT_EQ(catalog.GroupCount(AttributeSet(mask)),
              stats.GroupCount(AttributeSet(mask)));
  }
}

}  // namespace
}  // namespace streamagg
