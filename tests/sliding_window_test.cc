#include "dsms/sliding_window.h"

#include <gtest/gtest.h>

#include "dsms/configuration_runtime.h"
#include "dsms/reference_aggregator.h"
#include "stream/uniform_generator.h"

namespace streamagg {
namespace {

GroupKey Key1(uint32_t v) {
  GroupKey k;
  k.size = 1;
  k.values[0] = v;
  return k;
}

TEST(SlidingWindowTest, ValidatesArguments) {
  Hfta hfta(1);
  EXPECT_FALSE(SlidingWindowView::Make(nullptr, 0, 2).ok());
  EXPECT_FALSE(SlidingWindowView::Make(&hfta, 1, 2).ok());
  EXPECT_FALSE(SlidingWindowView::Make(&hfta, -1, 2).ok());
  EXPECT_FALSE(SlidingWindowView::Make(&hfta, 0, 0).ok());
  EXPECT_TRUE(SlidingWindowView::Make(&hfta, 0, 1).ok());
}

TEST(SlidingWindowTest, MergesPanesPerGroup) {
  Hfta hfta(1);
  hfta.Add(0, 0, Key1(7), AggregateState::FromCount(3));
  hfta.Add(0, 1, Key1(7), AggregateState::FromCount(4));
  hfta.Add(0, 1, Key1(8), AggregateState::FromCount(1));
  hfta.Add(0, 2, Key1(7), AggregateState::FromCount(5));

  auto view = SlidingWindowView::Make(&hfta, 0, 2);
  ASSERT_TRUE(view.ok());
  // Window ending at pane 1 covers panes 0-1.
  EpochAggregate w1 = view->WindowEndingAt(1);
  EXPECT_EQ(w1.at(Key1(7)).count, 7u);
  EXPECT_EQ(w1.at(Key1(8)).count, 1u);
  // Window ending at pane 2 covers panes 1-2: group 8 still visible, pane-0
  // contribution of group 7 expired.
  EpochAggregate w2 = view->WindowEndingAt(2);
  EXPECT_EQ(w2.at(Key1(7)).count, 9u);
  EXPECT_EQ(w2.at(Key1(8)).count, 1u);
  EXPECT_EQ(view->WindowTotalCount(2), 10u);
}

TEST(SlidingWindowTest, WindowOfOnePaneIsTheTumblingResult) {
  Hfta hfta(1);
  hfta.Add(0, 4, Key1(1), AggregateState::FromCount(2));
  auto view = SlidingWindowView::Make(&hfta, 0, 1);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->WindowEndingAt(4).at(Key1(1)).count, 2u);
  EXPECT_TRUE(view->WindowEndingAt(3).empty());
}

TEST(SlidingWindowTest, EarlyWindowsClampAtPaneZero) {
  Hfta hfta(1);
  hfta.Add(0, 0, Key1(5), AggregateState::FromCount(6));
  auto view = SlidingWindowView::Make(&hfta, 0, 4);
  ASSERT_TRUE(view.ok());
  // Window ending at pane 1 covers [0, 1] (no underflow).
  EXPECT_EQ(view->WindowEndingAt(1).at(Key1(5)).count, 6u);
}

TEST(SlidingWindowTest, MetricsMergeAcrossPanes) {
  const std::vector<MetricSpec> metrics = {
      MetricSpec{AggregateOp::kSum, 1}, MetricSpec{AggregateOp::kMax, 1}};
  Hfta hfta(std::vector<std::vector<MetricSpec>>{metrics});
  AggregateState a = AggregateState::FromCount(2);
  a.num_metrics = 2;
  a.metrics[0] = 100;  // sum
  a.metrics[1] = 70;   // max
  AggregateState b = AggregateState::FromCount(1);
  b.num_metrics = 2;
  b.metrics[0] = 30;
  b.metrics[1] = 90;
  hfta.Add(0, 0, Key1(3), a);
  hfta.Add(0, 1, Key1(3), b);
  auto view = SlidingWindowView::Make(&hfta, 0, 2);
  ASSERT_TRUE(view.ok());
  const AggregateState merged = view->WindowEndingAt(1).at(Key1(3));
  EXPECT_EQ(merged.count, 3u);
  EXPECT_EQ(merged.metrics[0], 130u);  // Sum across panes.
  EXPECT_EQ(merged.metrics[1], 90u);   // Max across panes.
}

TEST(SlidingWindowTest, EndToEndMatchesDirectWindowAggregation) {
  // Run a stream through a phantom configuration with 1-second panes and
  // check 3-pane sliding windows against direct aggregation of the window's
  // record range.
  auto gen = UniformGenerator::Make(*Schema::Default(3), 200, 17);
  ASSERT_TRUE(gen.ok());
  const Trace trace = Trace::Generate(**gen, 40000, 8.0);
  const AttributeSet abc = *trace.schema().ParseAttributeSet("ABC");
  const AttributeSet a = *trace.schema().ParseAttributeSet("A");
  std::vector<RuntimeRelationSpec> specs(2);
  specs[0].attrs = abc;
  specs[0].num_buckets = 256;
  specs[1].attrs = a;
  specs[1].num_buckets = 64;
  specs[1].parent = 0;
  specs[1].is_query = true;
  specs[1].query_index = 0;
  auto runtime =
      ConfigurationRuntime::Make(trace.schema(), specs, /*pane=*/1.0);
  ASSERT_TRUE(runtime.ok());
  (*runtime)->ProcessTrace(trace);

  auto view = SlidingWindowView::Make(&(*runtime)->hfta(), 0, 3);
  ASSERT_TRUE(view.ok());
  for (uint64_t end : {2ull, 4ull, 7ull}) {
    // Direct aggregation over records in [end-2, end] seconds.
    EpochAggregate expected;
    for (const Record& r : trace.records()) {
      const uint64_t pane = static_cast<uint64_t>(r.timestamp);
      if (pane + 2 < end || pane > end) continue;
      auto [it, inserted] = expected.try_emplace(GroupKey::Project(r, a),
                                                 AggregateState::FromCount(1));
      if (!inserted) it->second.count += 1;
    }
    const EpochAggregate actual = view->WindowEndingAt(end);
    ASSERT_EQ(actual.size(), expected.size()) << "window end " << end;
    for (const auto& [key, state] : expected) {
      auto it = actual.find(key);
      ASSERT_NE(it, actual.end());
      EXPECT_EQ(it->second.count, state.count) << key.ToString();
    }
  }
}

}  // namespace
}  // namespace streamagg
