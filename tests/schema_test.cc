#include "stream/schema.h"

#include <gtest/gtest.h>

namespace streamagg {
namespace {

TEST(SchemaTest, DefaultNamesAreLetters) {
  auto schema = Schema::Default(4);
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->num_attributes(), 4);
  EXPECT_EQ(schema->name(0), "A");
  EXPECT_EQ(schema->name(3), "D");
  EXPECT_TRUE(schema->HasSingleLetterNames());
}

TEST(SchemaTest, DefaultRejectsBadArity) {
  EXPECT_FALSE(Schema::Default(0).ok());
  EXPECT_FALSE(Schema::Default(kMaxAttributes + 1).ok());
}

TEST(SchemaTest, MakeValidatesNames) {
  EXPECT_FALSE(Schema::Make({}).ok());
  EXPECT_FALSE(Schema::Make({"a", ""}).ok());
  EXPECT_FALSE(Schema::Make({"x", "x"}).ok());
  EXPECT_TRUE(Schema::Make({"srcIP", "dstIP"}).ok());
}

TEST(SchemaTest, AllAttributesCoversEverything) {
  auto schema = Schema::Default(3);
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->AllAttributes(), AttributeSet::Of({0, 1, 2}));
}

TEST(SchemaTest, IndexOf) {
  auto schema = Schema::Make({"srcIP", "dstIP", "srcPort"});
  ASSERT_TRUE(schema.ok());
  auto idx = schema->IndexOf("dstIP");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(*idx, 1);
  EXPECT_FALSE(schema->IndexOf("nope").ok());
}

TEST(SchemaTest, ParseLetterSpec) {
  auto schema = Schema::Default(4);
  ASSERT_TRUE(schema.ok());
  auto set = schema->ParseAttributeSet("ACD");
  ASSERT_TRUE(set.ok());
  EXPECT_EQ(*set, AttributeSet::Of({0, 2, 3}));
}

TEST(SchemaTest, ParseCommaSpec) {
  auto schema = Schema::Make({"srcIP", "dstIP", "srcPort"});
  ASSERT_TRUE(schema.ok());
  auto set = schema->ParseAttributeSet("srcIP,srcPort");
  ASSERT_TRUE(set.ok());
  EXPECT_EQ(*set, AttributeSet::Of({0, 2}));
}

TEST(SchemaTest, ParseRejectsDuplicatesAndUnknowns) {
  auto schema = Schema::Default(4);
  ASSERT_TRUE(schema.ok());
  EXPECT_FALSE(schema->ParseAttributeSet("AA").ok());
  EXPECT_FALSE(schema->ParseAttributeSet("AZ").ok());
  EXPECT_FALSE(schema->ParseAttributeSet("").ok());
}

TEST(SchemaTest, FormatRoundTrips) {
  auto letters = Schema::Default(4);
  ASSERT_TRUE(letters.ok());
  const AttributeSet abd = AttributeSet::Of({0, 1, 3});
  EXPECT_EQ(letters->FormatAttributeSet(abd), "ABD");
  auto parsed = letters->ParseAttributeSet("ABD");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, abd);

  auto named = Schema::Make({"srcIP", "dstIP", "srcPort", "dstPort"});
  ASSERT_TRUE(named.ok());
  EXPECT_EQ(named->FormatAttributeSet(abd), "srcIP,dstIP,dstPort");
  auto parsed2 = named->ParseAttributeSet("srcIP,dstIP,dstPort");
  ASSERT_TRUE(parsed2.ok());
  EXPECT_EQ(*parsed2, abd);
}

}  // namespace
}  // namespace streamagg
