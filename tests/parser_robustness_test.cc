// Robustness sweeps for the two text parsers (configuration notation and
// the query language): random garbage and mutated valid inputs must never
// crash — every input either parses or returns a clean Status.

#include <string>

#include <gtest/gtest.h>

#include "core/configuration.h"
#include "core/query_language.h"
#include "util/random.h"

namespace streamagg {
namespace {

std::string RandomGarbage(Random* rng, size_t max_len) {
  static constexpr char kAlphabet[] =
      "ABCD abcd(),*/_0123456789 selct form group by time";
  const size_t len = rng->Uniform(max_len);
  std::string out;
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    out.push_back(kAlphabet[rng->Uniform(sizeof(kAlphabet) - 1)]);
  }
  return out;
}

// Randomly perturbs a valid input: delete, duplicate or swap characters.
std::string Mutate(const std::string& base, Random* rng) {
  std::string out = base;
  const int edits = 1 + static_cast<int>(rng->Uniform(4));
  for (int e = 0; e < edits && !out.empty(); ++e) {
    const size_t pos = rng->Uniform(out.size());
    switch (rng->Uniform(3)) {
      case 0:
        out.erase(pos, 1);
        break;
      case 1:
        out.insert(pos, 1, out[pos]);
        break;
      default:
        if (pos + 1 < out.size()) std::swap(out[pos], out[pos + 1]);
        break;
    }
  }
  return out;
}

class ParserRobustnessTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserRobustnessTest, ConfigurationParserNeverCrashes) {
  const Schema schema = *Schema::Default(4);
  Random rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const std::string garbage = RandomGarbage(&rng, 60);
    auto result = Configuration::Parse(schema, garbage);
    if (result.ok()) {
      // Whatever parsed must round-trip.
      auto again = Configuration::Parse(schema, result->ToString());
      ASSERT_TRUE(again.ok()) << garbage;
      EXPECT_EQ(again->ToString(), result->ToString());
    }
  }
  for (int i = 0; i < 200; ++i) {
    const std::string mutated =
        Mutate("ABCD(AB BCD(BC BD CD))", &rng);
    auto result = Configuration::Parse(schema, mutated);
    if (result.ok()) {
      EXPECT_GT(result->num_nodes(), 0);
    }
  }
}

TEST_P(ParserRobustnessTest, QueryParserNeverCrashes) {
  const Schema schema = *Schema::Default(4);
  Random rng(GetParam() ^ 0x51515151);
  for (int i = 0; i < 200; ++i) {
    const std::string garbage = RandomGarbage(&rng, 80);
    auto result = ParseQuery(schema, garbage);
    if (result.ok()) {
      EXPECT_FALSE(result->outputs.empty());
      EXPECT_FALSE(result->def.group_by.empty());
    }
  }
  const std::string valid =
      "select A, B, count(*) as cnt, sum(C) from R group by A, B, time/60";
  for (int i = 0; i < 200; ++i) {
    auto result = ParseQuery(schema, Mutate(valid, &rng));
    if (result.ok()) {
      EXPECT_FALSE(result->def.group_by.empty());
    }
  }
}

TEST_P(ParserRobustnessTest, AttributeSetParserNeverCrashes) {
  const Schema schema = *Schema::Default(4);
  Random rng(GetParam() + 17);
  for (int i = 0; i < 300; ++i) {
    const std::string garbage = RandomGarbage(&rng, 12);
    auto result = schema.ParseAttributeSet(garbage);
    if (result.ok()) {
      EXPECT_FALSE(result->empty());
      EXPECT_TRUE(result->IsSubsetOf(schema.AllAttributes()));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserRobustnessTest,
                         ::testing::Range<uint64_t>(1, 9));

}  // namespace
}  // namespace streamagg
