// Robustness sweeps for the two text parsers (configuration notation and
// the query language): random garbage and mutated valid inputs must never
// crash — every input either parses or returns a clean Status.

#include <cctype>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/configuration.h"
#include "core/query_language.h"
#include "util/random.h"

namespace streamagg {
namespace {

std::string RandomGarbage(Random* rng, size_t max_len) {
  static constexpr char kAlphabet[] =
      "ABCD abcd(),*/_0123456789 selct form group by time";
  const size_t len = rng->Uniform(max_len);
  std::string out;
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    out.push_back(kAlphabet[rng->Uniform(sizeof(kAlphabet) - 1)]);
  }
  return out;
}

// Randomly perturbs a valid input: delete, duplicate or swap characters.
std::string Mutate(const std::string& base, Random* rng) {
  std::string out = base;
  const int edits = 1 + static_cast<int>(rng->Uniform(4));
  for (int e = 0; e < edits && !out.empty(); ++e) {
    const size_t pos = rng->Uniform(out.size());
    switch (rng->Uniform(3)) {
      case 0:
        out.erase(pos, 1);
        break;
      case 1:
        out.insert(pos, 1, out[pos]);
        break;
      default:
        if (pos + 1 < out.size()) std::swap(out[pos], out[pos + 1]);
        break;
    }
  }
  return out;
}

class ParserRobustnessTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserRobustnessTest, ConfigurationParserNeverCrashes) {
  const Schema schema = *Schema::Default(4);
  Random rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const std::string garbage = RandomGarbage(&rng, 60);
    auto result = Configuration::Parse(schema, garbage);
    if (result.ok()) {
      // Whatever parsed must round-trip.
      auto again = Configuration::Parse(schema, result->ToString());
      ASSERT_TRUE(again.ok()) << garbage;
      EXPECT_EQ(again->ToString(), result->ToString());
    }
  }
  for (int i = 0; i < 200; ++i) {
    const std::string mutated =
        Mutate("ABCD(AB BCD(BC BD CD))", &rng);
    auto result = Configuration::Parse(schema, mutated);
    if (result.ok()) {
      EXPECT_GT(result->num_nodes(), 0);
    }
  }
}

TEST_P(ParserRobustnessTest, QueryParserNeverCrashes) {
  const Schema schema = *Schema::Default(4);
  Random rng(GetParam() ^ 0x51515151);
  for (int i = 0; i < 200; ++i) {
    const std::string garbage = RandomGarbage(&rng, 80);
    auto result = ParseQuery(schema, garbage);
    if (result.ok()) {
      EXPECT_FALSE(result->outputs.empty());
      EXPECT_FALSE(result->def.group_by.empty());
    }
  }
  const std::string valid =
      "select A, B, count(*) as cnt, sum(C) from R group by A, B, time/60";
  for (int i = 0; i < 200; ++i) {
    auto result = ParseQuery(schema, Mutate(valid, &rng));
    if (result.ok()) {
      EXPECT_FALSE(result->def.group_by.empty());
    }
  }
}

TEST_P(ParserRobustnessTest, AttributeSetParserNeverCrashes) {
  const Schema schema = *Schema::Default(4);
  Random rng(GetParam() + 17);
  for (int i = 0; i < 300; ++i) {
    const std::string garbage = RandomGarbage(&rng, 12);
    auto result = schema.ParseAttributeSet(garbage);
    if (result.ok()) {
      EXPECT_FALSE(result->empty());
      EXPECT_TRUE(result->IsSubsetOf(schema.AllAttributes()));
    }
  }
}

// ---------------------------------------------------------------------------
// Token-mutation fuzzer (ISSUE 10): instead of flipping characters, mutate
// at token granularity — delete, duplicate, swap, or substitute whole
// tokens from a vocabulary of keywords, attributes, numbers and punctuation
// — so the fuzz inputs stay lexically plausible and exercise the parser's
// grammar paths, not just the lexer's error path. Deterministic (seeded,
// stdlib only); the asan job runs it leak-checked.

/// Splits `text` into lexer-shaped tokens: identifier/number runs, single
/// punctuation characters (two-char operators arrive as two tokens, which
/// is itself a mutation the real lexer must survive).
std::vector<std::string> TokenizeForFuzz(const std::string& text) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : text) {
    const bool word = std::isalnum(static_cast<unsigned char>(c)) ||
                      c == '_' || c == '.';
    if (word) {
      current.push_back(c);
      continue;
    }
    if (!current.empty()) {
      tokens.push_back(current);
      current.clear();
    }
    if (!std::isspace(static_cast<unsigned char>(c))) {
      tokens.push_back(std::string(1, c));
    }
  }
  if (!current.empty()) tokens.push_back(current);
  return tokens;
}

/// Applies 1-4 token-level edits drawn from `rng`.
std::string MutateTokens(const std::string& base, Random* rng) {
  static const std::vector<std::string> kVocabulary = {
      "select", "from",  "where", "group", "by",   "having", "epoch",
      "and",    "as",    "count", "sum",   "min",  "max",    "avg",
      "time",   "A",     "B",     "C",     "D",    "R",      "xyz",
      "0",      "1",     "60",    "1e300", "18446744073709551616",
      "(",      ")",     ",",     "*",     "/",    "=",      "<",
      ">",      "!",     "<=",    ">=",    "!=",   "@",      "\xff"};
  std::vector<std::string> tokens = TokenizeForFuzz(base);
  const int edits = 1 + static_cast<int>(rng->Uniform(4));
  for (int e = 0; e < edits; ++e) {
    const size_t pos = tokens.empty() ? 0 : rng->Uniform(tokens.size());
    switch (rng->Uniform(4)) {
      case 0:
        if (!tokens.empty()) tokens.erase(tokens.begin() + pos);
        break;
      case 1:
        if (!tokens.empty()) {
          std::string copy = tokens[pos];
          tokens.insert(tokens.begin() + pos, std::move(copy));
        }
        break;
      case 2:
        if (pos + 1 < tokens.size()) std::swap(tokens[pos], tokens[pos + 1]);
        break;
      default:
        tokens.insert(tokens.begin() + pos,
                      kVocabulary[rng->Uniform(kVocabulary.size())]);
        break;
    }
  }
  std::string out;
  for (size_t i = 0; i < tokens.size(); ++i) {
    // Occasionally glue tokens together — the lexer must re-split them.
    if (i > 0 && rng->Uniform(8) != 0) out.push_back(' ');
    out += tokens[i];
  }
  return out;
}

TEST_P(ParserRobustnessTest, TokenMutationFuzzNeverCrashes) {
  const Schema schema = *Schema::Default(4);
  Random rng(GetParam() ^ 0x70ce7a11);
  const std::vector<std::string> seeds = {
      "select A, count(*) as cnt from R group by A, time/60 as tb",
      "select A, B, sum(C), avg(D) from R where C >= 7 and D != 0 "
      "group by A, B epoch 5",
      "select D, min(A), max(B) from R group by D having count(*) > 100",
  };
  QueryParseContext context;
  context.relations = {"R"};
  for (int i = 0; i < 600; ++i) {
    const std::string mutated = MutateTokens(seeds[i % seeds.size()], &rng);
    auto result = ParseQuery(schema, mutated, context);
    if (result.ok()) {
      EXPECT_FALSE(result->outputs.empty()) << mutated;
      EXPECT_FALSE(result->def.group_by.empty()) << mutated;
    } else {
      // Diagnostics stay well-formed on arbitrary garbage: a 1-based
      // position and a caret into the echoed source line.
      const std::string message = result.status().ToString();
      EXPECT_NE(message.find("query parse error at "), std::string::npos)
          << mutated;
      EXPECT_NE(message.find('^'), std::string::npos) << mutated;
    }
  }
}

TEST_P(ParserRobustnessTest, TokenMutationFuzzIsDeterministic) {
  // The fuzzer itself must be replayable: the same seed yields the same
  // mutation stream, so a CI failure reproduces locally from the seed.
  const std::string base =
      "select A, count(*) from R group by A, time/60";
  Random a(GetParam());
  Random b(GetParam());
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(MutateTokens(base, &a), MutateTokens(base, &b));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserRobustnessTest,
                         ::testing::Range<uint64_t>(1, 9));

}  // namespace
}  // namespace streamagg
