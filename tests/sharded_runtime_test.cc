// Sharded-ingest correctness: any shard count must produce exactly the
// per-epoch aggregates of the serial runtime (and therefore of a direct
// group-by). Sharding changes collision patterns and cost, never answers —
// the same invariant the runtime matrix enforces for configurations.

#include "dsms/sharded_runtime.h"

#include <gtest/gtest.h>

#include "core/configuration.h"
#include "core/engine.h"
#include "dsms/reference_aggregator.h"
#include "stream/flow_generator.h"
#include "stream/uniform_generator.h"
#include "stream/zipf_generator.h"

namespace streamagg {
namespace {

Trace ZipfTrace(uint64_t seed) {
  const Schema schema = *Schema::Default(4);
  auto universe = GroupUniverse::Uniform(schema, 800, {60, 60, 60, 60}, seed);
  auto gen =
      std::move(ZipfGenerator::Make(std::move(*universe), 1.0, seed + 1))
          .value();
  return Trace::Generate(*gen, 60000, 12.0);
}

Trace FlowTrace(uint64_t seed) {
  FlowGeneratorOptions options;
  options.seed = seed;
  auto gen = std::move(FlowGenerator::MakePaperTrace(options)).value();
  return Trace::Generate(*gen, 60000, 12.0);
}

/// Builds runtime specs for a configuration text with uniform small tables
/// (small enough that collisions and the phantom cascade are exercised).
std::vector<RuntimeRelationSpec> SpecsFor(const Schema& schema,
                                          const std::string& config_text,
                                          double buckets_per_table = 128.0) {
  auto config = Configuration::Parse(schema, config_text);
  EXPECT_TRUE(config.ok()) << config_text;
  auto specs = config->ToRuntimeSpecs(
      std::vector<double>(config->num_nodes(), buckets_per_table));
  EXPECT_TRUE(specs.ok());
  return *specs;
}

/// Runs the sharded runtime over `trace` and checks every query against the
/// direct reference aggregation.
void ExpectShardedMatchesReference(const Trace& trace,
                                   const std::string& config_text,
                                   double epoch_seconds, int num_shards) {
  const std::vector<RuntimeRelationSpec> specs =
      SpecsFor(trace.schema(), config_text);
  ShardedRuntime::Options options;
  options.num_shards = num_shards;
  auto sharded = ShardedRuntime::Make(trace.schema(), specs, epoch_seconds,
                                      options);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  (*sharded)->ProcessTrace(trace);

  auto config = Configuration::Parse(trace.schema(), config_text);
  const std::vector<QueryDef> queries = config->QueryDefs();
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const auto expected = ComputeReferenceAggregate(
        trace, queries[qi].group_by, epoch_seconds, queries[qi].metrics);
    std::string diagnostic;
    EXPECT_TRUE(AggregatesEqual(expected, (*sharded)->hfta(),
                                static_cast<int>(qi), &diagnostic))
        << config_text << " shards=" << num_shards << " query " << qi << ": "
        << diagnostic;
  }
}

TEST(ShardedRuntimeTest, ZipfTraceIdenticalAcrossShardCounts) {
  const Trace trace = ZipfTrace(0x5a1);
  for (int shards : {1, 2, 4, 7}) {
    ExpectShardedMatchesReference(trace, "ABCD(AB BCD(BC BD CD))", 3.0,
                                  shards);
  }
}

TEST(ShardedRuntimeTest, FlowTraceIdenticalAcrossShardCounts) {
  const Trace trace = FlowTrace(0xf10);
  for (int shards : {1, 2, 4, 7}) {
    ExpectShardedMatchesReference(trace, "ABCD(AB BCD(BC BD CD))", 3.0,
                                  shards);
  }
}

TEST(ShardedRuntimeTest, FlatForestSingleEpoch) {
  // Multiple raw relations: the partition attrs are the union ABCD.
  const Trace trace = ZipfTrace(0x77);
  for (int shards : {1, 4}) {
    ExpectShardedMatchesReference(trace, "A B C D", 0.0, shards);
  }
}

TEST(ShardedRuntimeTest, MetricsSurviveShardMerge) {
  const Trace trace = FlowTrace(0x3c);
  const Schema& schema = trace.schema();
  auto base = Configuration::Parse(schema, "ABC(AB(A B) C) D");
  ASSERT_TRUE(base.ok());
  std::vector<QueryDef> defs = base->QueryDefs();
  for (QueryDef& def : defs) {
    def.metrics = {MetricSpec{AggregateOp::kSum, 0},
                   MetricSpec{AggregateOp::kMax, 3}};
  }
  auto config = Configuration::Make(schema, defs, base->PhantomSets());
  ASSERT_TRUE(config.ok());
  auto specs = config->ToRuntimeSpecs(
      std::vector<double>(config->num_nodes(), 128.0));
  ASSERT_TRUE(specs.ok());

  ShardedRuntime::Options options;
  options.num_shards = 4;
  auto sharded = ShardedRuntime::Make(schema, *specs, 3.0, options);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  (*sharded)->ProcessTrace(trace);
  const std::vector<QueryDef> queries = config->QueryDefs();
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const auto expected = ComputeReferenceAggregate(
        trace, queries[qi].group_by, 3.0, queries[qi].metrics);
    std::string diagnostic;
    EXPECT_TRUE(AggregatesEqual(expected, (*sharded)->hfta(),
                                static_cast<int>(qi), &diagnostic))
        << "query " << qi << ": " << diagnostic;
  }
}

TEST(ShardedRuntimeTest, SingleShardMatchesSerialRuntimeExactly) {
  // One shard behind a queue must be bit-identical to the serial runtime:
  // same tables, same seed, same record order.
  const Trace trace = ZipfTrace(0x91);
  const std::vector<RuntimeRelationSpec> specs =
      SpecsFor(trace.schema(), "ABCD(AB BCD(BC BD CD))");

  auto serial = ConfigurationRuntime::Make(trace.schema(), specs, 3.0);
  ASSERT_TRUE(serial.ok());
  (*serial)->ProcessTrace(trace);

  ShardedRuntime::Options options;
  options.num_shards = 1;
  auto sharded = ShardedRuntime::Make(trace.schema(), specs, 3.0, options);
  ASSERT_TRUE(sharded.ok());
  (*sharded)->ProcessTrace(trace);

  for (int qi = 0; qi < (*serial)->hfta().num_queries(); ++qi) {
    const std::vector<uint64_t> epochs = (*serial)->hfta().Epochs(qi);
    EXPECT_EQ(epochs, (*sharded)->hfta().Epochs(qi));
    for (uint64_t epoch : epochs) {
      EXPECT_TRUE((*serial)->hfta().Result(qi, epoch) ==
                  (*sharded)->hfta().Result(qi, epoch))
          << "query " << qi << " epoch " << epoch;
    }
  }
  // Identical record order through identical tables: identical counters.
  const RuntimeCounters& a = (*serial)->counters();
  const RuntimeCounters& b = (*sharded)->counters();
  EXPECT_EQ(a.records, b.records);
  EXPECT_EQ(a.total_probes(), b.total_probes());
  EXPECT_EQ(a.total_transfers(), b.total_transfers());
}

TEST(ShardedRuntimeTest, CountersAggregateAcrossShards) {
  const Trace trace = ZipfTrace(0xc0);
  const std::vector<RuntimeRelationSpec> specs =
      SpecsFor(trace.schema(), "ABCD(AB BCD(BC BD CD))");
  ShardedRuntime::Options options;
  options.num_shards = 4;
  auto sharded = ShardedRuntime::Make(trace.schema(), specs, 3.0, options);
  ASSERT_TRUE(sharded.ok());
  (*sharded)->ProcessTrace(trace);

  // The merged snapshot equals the field-wise sum over shard replicas.
  RuntimeCounters sum;
  for (int s = 0; s < (*sharded)->num_shards(); ++s) {
    sum.Add((*sharded)->shard(s).counters());
  }
  const RuntimeCounters& merged = (*sharded)->counters();
  EXPECT_EQ(merged.records, sum.records);
  EXPECT_EQ(merged.intra_probes, sum.intra_probes);
  EXPECT_EQ(merged.intra_transfers, sum.intra_transfers);
  EXPECT_EQ(merged.flush_probes, sum.flush_probes);
  EXPECT_EQ(merged.flush_transfers, sum.flush_transfers);
  EXPECT_EQ(merged.epochs_flushed, sum.epochs_flushed);

  // No record is lost or duplicated by the partitioning.
  EXPECT_EQ(merged.records, trace.size());
  // Every raw-relation probe happened on some shard.
  EXPECT_GE(merged.total_probes(), merged.records);
}

TEST(ShardedRuntimeTest, RuntimeCountersAddIsFieldWise) {
  RuntimeCounters a;
  a.records = 10;
  a.intra_probes = 20;
  a.intra_transfers = 3;
  a.flush_probes = 7;
  a.flush_transfers = 2;
  a.epochs_flushed = 1;
  RuntimeCounters b = a;
  b.records = 5;
  a.Add(b);
  EXPECT_EQ(a.records, 15u);
  EXPECT_EQ(a.intra_probes, 40u);
  EXPECT_EQ(a.intra_transfers, 6u);
  EXPECT_EQ(a.flush_probes, 14u);
  EXPECT_EQ(a.flush_transfers, 4u);
  EXPECT_EQ(a.epochs_flushed, 2u);
  EXPECT_EQ(a.total_probes(), 54u);
  EXPECT_EQ(a.total_transfers(), 10u);
}

TEST(ShardedRuntimeTest, RejectsInvalidOptions) {
  const Schema schema = *Schema::Default(4);
  const std::vector<RuntimeRelationSpec> specs =
      SpecsFor(schema, "AB(A B)");
  ShardedRuntime::Options options;
  options.num_shards = 0;
  EXPECT_FALSE(ShardedRuntime::Make(schema, specs, 0.0, options).ok());
  options.num_shards = 2;
  options.queue_capacity = 1;
  EXPECT_FALSE(ShardedRuntime::Make(schema, specs, 0.0, options).ok());
  options.queue_capacity = 4096;
  options.num_producers = 0;
  EXPECT_FALSE(ShardedRuntime::Make(schema, specs, 0.0, options).ok());
}

TEST(ShardedRuntimeTest, ValidationMessagesNameFieldAndValue) {
  // Status messages must point at the offending field with the value it
  // held, so a misconfigured deployment reads the fix off the error.
  const Schema schema = *Schema::Default(4);
  const std::vector<RuntimeRelationSpec> specs =
      SpecsFor(schema, "AB(A B)");
  ShardedRuntime::Options options;
  options.num_shards = -3;
  auto status = ShardedRuntime::Make(schema, specs, 0.0, options).status();
  EXPECT_NE(status.ToString().find("num_shards"), std::string::npos)
      << status.ToString();
  EXPECT_NE(status.ToString().find("-3"), std::string::npos)
      << status.ToString();

  options.num_shards = 2;
  options.num_producers = 0;
  status = ShardedRuntime::Make(schema, specs, 0.0, options).status();
  EXPECT_NE(status.ToString().find("num_producers"), std::string::npos)
      << status.ToString();
  EXPECT_NE(status.ToString().find("(got 0)"), std::string::npos)
      << status.ToString();

  options.num_producers = 1;
  options.queue_capacity = 1;
  status = ShardedRuntime::Make(schema, specs, 0.0, options).status();
  EXPECT_NE(status.ToString().find("queue_capacity"), std::string::npos)
      << status.ToString();
  EXPECT_NE(status.ToString().find("(got 1)"), std::string::npos)
      << status.ToString();
}

TEST(ShardedRuntimeTest, EngineShardedMatchesSerialEngine) {
  const Schema schema = *Schema::Default(4);
  const Trace trace = ZipfTrace(0xe7);

  auto run = [&](int num_shards) {
    std::vector<QueryDef> queries = {
        QueryDef(*schema.ParseAttributeSet("AB")),
        QueryDef(*schema.ParseAttributeSet("BC")),
        QueryDef(*schema.ParseAttributeSet("CD"))};
    StreamAggEngine::Options options;
    options.memory_words = 8000;
    options.sample_size = 10000;
    options.epoch_seconds = 3.0;
    options.clustered = false;
    options.num_shards = num_shards;
    auto engine =
        std::move(StreamAggEngine::FromQueryDefs(schema, queries, options))
            .value();
    for (const Record& r : trace.records()) {
      EXPECT_TRUE(engine->Process(r).ok());
    }
    EXPECT_TRUE(engine->Finish().ok());
    return engine;
  };

  auto serial = run(1);
  auto sharded = run(4);
  for (int qi = 0; qi < serial->num_queries(); ++qi) {
    const std::vector<uint64_t> epochs = serial->Epochs(qi);
    EXPECT_EQ(epochs, sharded->Epochs(qi)) << "query " << qi;
    for (uint64_t epoch : epochs) {
      EXPECT_TRUE(serial->EpochResult(qi, epoch) ==
                  sharded->EpochResult(qi, epoch))
          << "query " << qi << " epoch " << epoch;
    }
  }
  // Both pipelines processed every record exactly once.
  EXPECT_EQ(serial->counters().records, sharded->counters().records);
}

TEST(ShardedRuntimeTest, EngineAcceptsAdaptiveSharding) {
  // Adaptive + sharded is a supported combination: the drift check and plan
  // swap run at the quiescence barrier (tests/adaptive_differential_test.cc
  // exercises the behavior; this covers the validation surface).
  const Schema schema = *Schema::Default(4);
  std::vector<QueryDef> queries = {QueryDef(*schema.ParseAttributeSet("AB"))};
  StreamAggEngine::Options options;
  options.num_shards = 4;
  options.adaptive = true;
  EXPECT_TRUE(StreamAggEngine::FromQueryDefs(schema, queries, options).ok());
  options.adaptive = false;
  options.num_shards = 0;
  EXPECT_FALSE(StreamAggEngine::FromQueryDefs(schema, queries, options).ok());
}

TEST(ShardedRuntimeTest, EngineValidationCoversProducerCombinations) {
  const Schema schema = *Schema::Default(4);
  std::vector<QueryDef> queries = {QueryDef(*schema.ParseAttributeSet("AB"))};

  auto expect_rejected = [&](StreamAggEngine::Options options,
                             const std::string& field,
                             const std::string& value) {
    auto result = StreamAggEngine::FromQueryDefs(schema, queries, options);
    ASSERT_FALSE(result.ok()) << field;
    const std::string message = result.status().ToString();
    EXPECT_NE(message.find(field), std::string::npos) << message;
    EXPECT_NE(message.find(value), std::string::npos) << message;
  };

  StreamAggEngine::Options options;
  options.num_producers = 0;
  expect_rejected(options, "num_producers", "(got 0)");

  options = {};
  options.num_producers = -2;
  expect_rejected(options, "num_producers", "(got -2)");

  options = {};
  options.shard_queue_capacity = 1;
  expect_rejected(options, "shard_queue_capacity", "(got 1)");

  // Valid combinations still construct.
  options = {};
  options.num_producers = 2;
  options.num_shards = 2;
  EXPECT_TRUE(StreamAggEngine::FromQueryDefs(schema, queries, options).ok());
  options = {};
  options.adaptive = true;  // Serial adaptive stays allowed.
  EXPECT_TRUE(StreamAggEngine::FromQueryDefs(schema, queries, options).ok());

  // Adaptive composes with sharding and parallel ingest: the drift check
  // and plan swap happen at the quiescence barrier.
  options = {};
  options.adaptive = true;
  options.num_shards = 2;
  EXPECT_TRUE(StreamAggEngine::FromQueryDefs(schema, queries, options).ok());
  options = {};
  options.adaptive = true;
  options.num_producers = 4;
  options.num_shards = 4;
  EXPECT_TRUE(StreamAggEngine::FromQueryDefs(schema, queries, options).ok());
}

}  // namespace
}  // namespace streamagg
