#include "dsms/rollup.h"

#include <gtest/gtest.h>

#include "dsms/reference_aggregator.h"
#include "stream/uniform_generator.h"

namespace streamagg {
namespace {

GroupKey Key2(uint32_t a, uint32_t b) {
  GroupKey k;
  k.size = 2;
  k.values[0] = a;
  k.values[1] = b;
  return k;
}

TEST(RollupTest, FoldsCountsPerCoarseGroup) {
  EpochAggregate fine;
  fine[Key2(1, 10)] = AggregateState::FromCount(3);
  fine[Key2(1, 20)] = AggregateState::FromCount(4);
  fine[Key2(2, 10)] = AggregateState::FromCount(5);
  const AttributeSet ab = AttributeSet::Of({0, 1});
  auto coarse = Rollup(fine, ab, AttributeSet::Single(0), {});
  ASSERT_TRUE(coarse.ok());
  ASSERT_EQ(coarse->size(), 2u);
  GroupKey a1;
  a1.size = 1;
  a1.values[0] = 1;
  GroupKey a2;
  a2.size = 1;
  a2.values[0] = 2;
  EXPECT_EQ(coarse->at(a1).count, 7u);
  EXPECT_EQ(coarse->at(a2).count, 5u);
}

TEST(RollupTest, MergesMetricStates) {
  const std::vector<MetricSpec> metrics = {
      MetricSpec{AggregateOp::kSum, 3}, MetricSpec{AggregateOp::kMax, 3}};
  EpochAggregate fine;
  AggregateState s1 = AggregateState::FromCount(2);
  s1.num_metrics = 2;
  s1.metrics[0] = 100;
  s1.metrics[1] = 60;
  AggregateState s2 = AggregateState::FromCount(1);
  s2.num_metrics = 2;
  s2.metrics[0] = 40;
  s2.metrics[1] = 90;
  fine[Key2(1, 10)] = s1;
  fine[Key2(1, 20)] = s2;
  const AttributeSet ab = AttributeSet::Of({0, 1});
  auto coarse = Rollup(fine, ab, AttributeSet::Single(0), metrics);
  ASSERT_TRUE(coarse.ok());
  GroupKey a1;
  a1.size = 1;
  a1.values[0] = 1;
  const AggregateState& merged = coarse->at(a1);
  EXPECT_EQ(merged.count, 3u);
  EXPECT_EQ(merged.metrics[0], 140u);
  EXPECT_EQ(merged.metrics[1], 90u);
}

TEST(RollupTest, ValidatesArguments) {
  EpochAggregate fine;
  const AttributeSet ab = AttributeSet::Of({0, 1});
  const AttributeSet cd = AttributeSet::Of({2, 3});
  EXPECT_FALSE(Rollup(fine, ab, cd, {}).ok());
  EXPECT_FALSE(Rollup(fine, ab, AttributeSet(), {}).ok());
  EXPECT_TRUE(Rollup(fine, ab, ab, {}).ok());  // Identity rollup.
}

TEST(RollupTest, MatchesDirectCoarseAggregation) {
  // Rolling up a fine aggregate equals aggregating the stream directly at
  // the coarse granularity — the algebraic fact phantoms rely on.
  auto gen = UniformGenerator::Make(*Schema::Default(3), 200, 41);
  ASSERT_TRUE(gen.ok());
  const Trace trace = Trace::Generate(**gen, 20000, 4.0);
  const AttributeSet abc = trace.schema().AllAttributes();
  const AttributeSet ac = AttributeSet::Of({0, 2});
  const auto fine = ComputeReferenceAggregate(trace, abc, 0.0);
  const auto direct = ComputeReferenceAggregate(trace, ac, 0.0);
  auto rolled = Rollup(fine.at(0), abc, ac, {});
  ASSERT_TRUE(rolled.ok());
  ASSERT_EQ(rolled->size(), direct.at(0).size());
  for (const auto& [key, state] : direct.at(0)) {
    auto it = rolled->find(key);
    ASSERT_NE(it, rolled->end());
    EXPECT_EQ(it->second.count, state.count);
  }
}

}  // namespace
}  // namespace streamagg
